//! Deterministic parallel sweep runner.
//!
//! Every `World` run in this workspace is a pure function of its
//! configuration and seed (enforced by the bit-identity rerun test in
//! `tests/chaos.rs`), which makes experiment suites embarrassingly
//! parallel: a sweep is just `jobs.iter().map(run)` where the iterations
//! share nothing. [`sweep`] evaluates that map across OS threads while
//! guaranteeing the *result vector is byte-identical to the serial path*:
//!
//! * each result is written into a pre-sized slot at its job's index, so
//!   output order is a property of the job list, never of thread
//!   scheduling;
//! * jobs are handed out through a single atomic counter (work stealing
//!   by index), so there is no partitioning heuristic to tune and tail
//!   latency is bounded by the single slowest job;
//! * the closure receives `&Job` exactly as a serial loop would — any
//!   RNG it uses must be derived per job (from the job's own seed), which
//!   is already the convention everywhere in this repo.
//!
//! Worker count comes from [`worker_count`]: the `SPIDER_JOBS` env var if
//! set, else [`std::thread::available_parallelism`]. `SPIDER_JOBS=1`
//! selects the exact serial path (no threads spawned at all), which is
//! what the determinism tests compare against.
//!
//! [`sweep`] is all-or-nothing: one panicking job aborts the batch.
//! That is the right contract for the paper's experiment binaries (a
//! half-generated figure is worse than no figure), but a chaos campaign
//! deliberately runs schedules that might crash the simulator, and
//! losing a thousand finished trials to one bad one is unacceptable.
//! [`try_sweep`] is the degrade-gracefully variant: each job runs under
//! its own `catch_unwind` quarantine, a panic becomes a structured
//! [`JobFailure`] (job index, panic message, caller-supplied
//! config/seed fingerprint) in the returned [`SweepReport`], and every
//! other job still produces its result. An optional watchdog deadline
//! flags jobs that are still running past a wall-clock budget — it
//! cannot kill a wedged thread (std offers no safe way), but it names
//! the hung job instead of letting the sweep look merely slow. For
//! fully-successful sweeps the result vector is bit-identical to the
//! serial path at any worker count, exactly like [`sweep`].
//!
//! Not every job in a batch deserves its own cold start, though: trial
//! batches often share a long scenario prefix (same world, same seed,
//! divergence only at a fault or config event), and since PR 7 a world
//! can be checkpointed and forked. [`forked_sweep`] is the job form for
//! that shape — jobs are grouped by the checkpoint they share, each
//! group's warmup runs **once**, and every job then runs from a clone
//! of its group's checkpoint. Results are still slot-ordered and
//! bit-identical at any worker count; only redundant prefix simulation
//! disappears.
//!
//! [`forked_sweep_tree`] generalises the flat base list into a base
//! **tree**: checkpoints themselves can fork from other checkpoints
//! (parent links, parents at smaller indices), which is the shape of a
//! campaign whose trial plans share *faulty* prefixes, not just the
//! fault-free one. [`grow_tree_with`] materialises the tree level by
//! level — siblings in parallel, children only after their parent's
//! level — and the flat [`forked_sweep`] is now just the degenerate
//! all-roots tree.
//!
//! Only `std` is used — scoped threads, no external dependencies.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::thread;
// The watchdog deadline is a real-time budget by definition; nothing
// simulated ever reads it. lint:allow(wall-clock)
use std::time::Duration;

/// Resolve the worker count for [`sweep`].
///
/// Order of precedence:
/// 1. `SPIDER_JOBS` env var — must parse as a positive integer;
///    anything else (garbage, empty, `0`) **panics**, because a typo'd
///    override silently falling back to "all cores" is how a
///    determinism comparison run (`SPIDER_JOBS=1`) quietly stops
///    comparing anything,
/// 2. [`std::thread::available_parallelism`],
/// 3. `1` if the platform cannot report parallelism.
pub fn worker_count() -> usize {
    match std::env::var("SPIDER_JOBS") {
        Ok(v) => parse_spider_jobs(&v),
        Err(_) => thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// Parse a `SPIDER_JOBS` value. Split out of [`worker_count`] so the
/// rejection paths are unit-testable without mutating the process
/// environment.
///
/// # Panics
///
/// Panics with a pointed message on anything but a positive integer.
fn parse_spider_jobs(v: &str) -> usize {
    match v.trim().parse::<usize>() {
        Ok(0) => {
            panic!("SPIDER_JOBS=0 is invalid: worker count must be >= 1 (1 = exact serial path)")
        }
        Ok(n) => n,
        Err(_) => panic!(
            "SPIDER_JOBS={v:?} is not a positive integer; set a worker count >= 1 or unset it"
        ),
    }
}

/// Run `run` over every job, in parallel, returning results in job order.
///
/// Equivalent to `jobs.iter().map(run).collect()` — same results, same
/// order — but spread over [`worker_count`] threads. See the module docs
/// for the determinism contract.
///
/// Panics in `run` are propagated to the caller (first one observed wins;
/// remaining jobs may be skipped once a worker has panicked).
pub fn sweep<J: Sync, R: Send>(jobs: &[J], run: impl Fn(&J) -> R + Sync) -> Vec<R> {
    sweep_with(jobs, run, worker_count())
}

/// [`sweep`] with an explicit worker count (used by tests so they don't
/// have to mutate the process environment).
pub fn sweep_with<J: Sync, R: Send>(
    jobs: &[J],
    run: impl Fn(&J) -> R + Sync,
    workers: usize,
) -> Vec<R> {
    if workers <= 1 || jobs.len() <= 1 {
        // Exact serial path: no threads, no atomics.
        return jobs.iter().map(run).collect();
    }
    let workers = workers.min(jobs.len());

    // Pre-sized slots: worker i writes result k into slots[k], so the
    // final order depends only on the job list.
    let mut slots: Vec<Option<R>> = Vec::with_capacity(jobs.len());
    slots.resize_with(jobs.len(), || None);
    let next = AtomicUsize::new(0);
    let run = &run;

    thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            // Each worker collects (index, result) pairs and the merge
            // below writes them into their slots; job granularity is
            // whole-World runs, so the extra Vec is noise.
            handles.push(scope.spawn(|| {
                let mut out: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs.len() {
                        break;
                    }
                    match catch_unwind(AssertUnwindSafe(|| run(&jobs[i]))) {
                        Ok(r) => out.push((i, r)),
                        Err(payload) => {
                            // Park the counter past the end so siblings
                            // stop picking up new work, then re-raise.
                            next.store(usize::MAX, Ordering::Relaxed);
                            return Err(payload);
                        }
                    }
                }
                Ok(out)
            }));
        }
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for handle in handles {
            match handle.join() {
                Ok(Ok(out)) => {
                    for (i, r) in out {
                        slots[i] = Some(r);
                    }
                }
                Ok(Err(payload)) => panic = panic.or(Some(payload)),
                Err(payload) => panic = panic.or(Some(payload)),
            }
        }
        if let Some(payload) = panic {
            resume_unwind(payload);
        }
    });

    slots
        .into_iter()
        .map(|slot| slot.expect("sweep: every job index produced a result"))
        .collect()
}

/// Prefix-sharing sweep: run each job from a clone of a shared, warmed
/// checkpoint instead of from a cold start.
///
/// `bases` describes the distinct checkpoints; `warmup` is called once
/// per base (in parallel, like any sweep job) and returns the
/// checkpoint state `S` — typically a `World` advanced to just before
/// the point where the batch's variants diverge. Each job is a
/// `(base_index, job)` pair; `run` receives a fresh clone of its base's
/// checkpoint. With a deterministic clone (the whole point of the
/// checkpoint engine: cloning a world preserves its event queue, RNG
/// streams and client stack bit-for-bit), results are byte-identical to
/// cold runs and to the serial path at any worker count.
///
/// # Panics
///
/// Panics if a job names a base index out of range, and propagates
/// panics from `warmup`/`run` like [`sweep`] does.
pub fn forked_sweep<B, S, J, R>(
    bases: &[B],
    jobs: &[(usize, J)],
    warmup: impl Fn(&B) -> S + Sync,
    run: impl Fn(S, &J) -> R + Sync,
) -> Vec<R>
where
    B: Sync,
    S: Clone + Send + Sync,
    J: Sync,
    R: Send,
{
    forked_sweep_with(bases, jobs, warmup, run, worker_count())
}

/// [`forked_sweep`] with an explicit worker count (used by tests so
/// they don't have to mutate the process environment).
pub fn forked_sweep_with<B, S, J, R>(
    bases: &[B],
    jobs: &[(usize, J)],
    warmup: impl Fn(&B) -> S + Sync,
    run: impl Fn(S, &J) -> R + Sync,
    workers: usize,
) -> Vec<R>
where
    B: Sync,
    S: Clone + Send + Sync,
    J: Sync,
    R: Send,
{
    // A flat base list is the degenerate tree: every base is a root.
    let nodes: Vec<(Option<usize>, &B)> = bases.iter().map(|b| (None, b)).collect();
    forked_sweep_tree_with(&nodes, jobs, |_parent, b| warmup(b), run, workers)
}

/// Grow a checkpoint *tree* level by level: each node's state is built
/// by `grow` from its parent's finished state (`None` for a root).
///
/// `nodes[i] = (parent, base)` where `parent`, if present, **must be a
/// smaller index** — parents precede children, so the input order is a
/// valid topological order and each tree level can run as one parallel
/// sweep. Nodes at the same depth share nothing and run concurrently;
/// a node only starts after its parent's level has completed. The
/// returned states are in node order regardless of worker count.
///
/// # Panics
///
/// Panics if a node names a parent at an equal or larger index, and
/// propagates panics from `grow` like [`sweep`] does.
pub fn grow_tree_with<B, S>(
    nodes: &[(Option<usize>, B)],
    grow: impl Fn(Option<&S>, &B) -> S + Sync,
    workers: usize,
) -> Vec<S>
where
    B: Sync,
    S: Send + Sync,
{
    let mut depth = vec![0usize; nodes.len()];
    for (i, (parent, _)) in nodes.iter().enumerate() {
        if let Some(p) = *parent {
            assert!(
                p < i,
                "grow_tree: node {i} names parent {p}; parents must precede children"
            );
            depth[i] = depth[p] + 1;
        }
    }
    let max_depth = depth.iter().copied().max().unwrap_or(0);

    let mut states: Vec<Option<S>> = Vec::with_capacity(nodes.len());
    states.resize_with(nodes.len(), || None);
    for level in 0..=max_depth {
        let level_nodes: Vec<usize> = (0..nodes.len()).filter(|&i| depth[i] == level).collect();
        // The closure reads completed parent states from the previous
        // levels; the immutable borrow ends before the write-back below.
        let states_ref = &states;
        let grown = sweep_with(
            &level_nodes,
            |&i| {
                let parent = nodes[i].0.map(|p| {
                    states_ref[p]
                        .as_ref()
                        .expect("grow_tree: parent level completed before child level")
                });
                grow(parent, &nodes[i].1)
            },
            workers,
        );
        for (i, s) in level_nodes.into_iter().zip(grown) {
            states[i] = Some(s);
        }
    }
    states
        .into_iter()
        .map(|s| s.expect("grow_tree: every node grown"))
        .collect()
}

/// Tree-shaped [`forked_sweep`]: bases form a checkpoint tree (parent
/// links) instead of a flat list, so jobs can fork from checkpoints
/// that themselves forked from a deeper shared prefix — the shape of a
/// chaos campaign whose trial plans share faulty prefixes, not just the
/// fault-free one (DESIGN.md §13).
///
/// `nodes[i] = (parent, base)` with parents at smaller indices; `grow`
/// builds each node's checkpoint from its parent's (or from scratch for
/// a root). Each job `(node_index, job)` then runs from a clone of its
/// node's checkpoint. Results stay slot-ordered and worker-count
/// invariant exactly like every other sweep in this module.
///
/// # Panics
///
/// Panics if a job names a node index out of range or a node names a
/// parent at an equal or larger index, and propagates panics from
/// `grow`/`run` like [`sweep`] does.
pub fn forked_sweep_tree<B, S, J, R>(
    nodes: &[(Option<usize>, B)],
    jobs: &[(usize, J)],
    grow: impl Fn(Option<&S>, &B) -> S + Sync,
    run: impl Fn(S, &J) -> R + Sync,
) -> Vec<R>
where
    B: Sync,
    S: Clone + Send + Sync,
    J: Sync,
    R: Send,
{
    forked_sweep_tree_with(nodes, jobs, grow, run, worker_count())
}

/// [`forked_sweep_tree`] with an explicit worker count (used by tests
/// so they don't have to mutate the process environment).
pub fn forked_sweep_tree_with<B, S, J, R>(
    nodes: &[(Option<usize>, B)],
    jobs: &[(usize, J)],
    grow: impl Fn(Option<&S>, &B) -> S + Sync,
    run: impl Fn(S, &J) -> R + Sync,
    workers: usize,
) -> Vec<R>
where
    B: Sync,
    S: Clone + Send + Sync,
    J: Sync,
    R: Send,
{
    if let Some(&(bad, _)) = jobs.iter().find(|(n, _)| *n >= nodes.len()) {
        panic!(
            "forked_sweep: job references base {bad} but only {} bases were provided",
            nodes.len()
        );
    }
    let checkpoints: Vec<S> = grow_tree_with(nodes, grow, workers);
    sweep_with(
        jobs,
        |(node, job)| run(checkpoints[*node].clone(), job),
        workers,
    )
}

/// One quarantined job failure inside a [`try_sweep`] batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobFailure {
    /// Index of the failed job in the input job list.
    pub index: usize,
    /// The panic message (downcast from the payload; `<non-string
    /// panic payload>` when the payload was neither `&str` nor
    /// `String`).
    pub message: String,
    /// Caller-supplied identification of the job — by convention a
    /// seed/config fingerprint, so the failure can be reproduced
    /// without the original job list.
    pub fingerprint: String,
}

impl std::fmt::Display for JobFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "job {} [{}] panicked: {}",
            self.index, self.fingerprint, self.message
        )
    }
}

/// The outcome of a [`try_sweep`] batch: per-slot results plus the
/// quarantined failures.
///
/// `results[i]` is `Some` exactly when job `i` completed; every `None`
/// slot has a matching entry in `failures`. A sweep with an empty
/// `failures` list is *complete* and its result vector is bit-identical
/// to the serial path; anything else is *degraded* and the caller
/// decides whether partial results are usable.
#[derive(Debug, Clone)]
pub struct SweepReport<R> {
    /// Slot-ordered results; `None` marks a failed job.
    pub results: Vec<Option<R>>,
    /// Failures in ascending job order.
    pub failures: Vec<JobFailure>,
    /// Job indices the watchdog saw still running past the deadline
    /// (ascending). Purely diagnostic: a flagged job may well have
    /// completed after being flagged, in which case its result is
    /// present anyway. Always empty without a watchdog.
    pub hung: Vec<usize>,
}

impl<R> SweepReport<R> {
    /// True when every job produced a result.
    pub fn is_complete(&self) -> bool {
        self.failures.is_empty()
    }

    /// Successful `(job index, result)` pairs in job order.
    pub fn successes(&self) -> impl Iterator<Item = (usize, &R)> {
        self.results
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().map(|r| (i, r)))
    }

    /// Unwrap a sweep the caller requires to be complete.
    ///
    /// # Panics
    ///
    /// Panics (listing the first failure) if any job failed.
    pub fn expect_complete(self, what: &str) -> Vec<R> {
        if let Some(f) = self.failures.first() {
            panic!(
                "{what}: sweep degraded ({} of {} jobs failed; first: {f})",
                self.failures.len(),
                self.results.len(),
            );
        }
        self.results
            .into_iter()
            .map(|r| r.expect("complete sweep has every slot filled"))
            .collect()
    }
}

/// Tuning for [`try_sweep_with`].
#[derive(Debug, Clone, Default)]
pub struct SweepOptions {
    /// Worker threads; `0` means [`worker_count`].
    pub workers: usize,
    /// Wall-clock budget per job before the watchdog flags it as hung.
    /// `None` disables the watchdog (no timing, no extra thread).
    pub watchdog: Option<Duration>,
}

/// Degrade-gracefully sweep: like [`sweep`], but a panicking job is
/// quarantined as a [`JobFailure`] instead of aborting the batch.
///
/// `fingerprint` renders a job into a short stable identifier (seed,
/// config digest) recorded on its failure. See [`SweepReport`] for the
/// complete-vs-degraded contract.
pub fn try_sweep<J: Sync, R: Send>(
    jobs: &[J],
    run: impl Fn(&J) -> R + Sync,
    fingerprint: impl Fn(&J) -> String + Sync,
) -> SweepReport<R> {
    try_sweep_with(jobs, run, fingerprint, SweepOptions::default())
}

/// [`try_sweep`] with explicit [`SweepOptions`] (worker count and
/// watchdog deadline).
pub fn try_sweep_with<J: Sync, R: Send>(
    jobs: &[J],
    run: impl Fn(&J) -> R + Sync,
    fingerprint: impl Fn(&J) -> String + Sync,
    opts: SweepOptions,
) -> SweepReport<R> {
    let workers = if opts.workers == 0 {
        worker_count()
    } else {
        opts.workers
    };
    let quarantine = |i: usize, payload: Box<dyn std::any::Any + Send>| JobFailure {
        index: i,
        message: panic_message(payload),
        fingerprint: fingerprint(&jobs[i]),
    };

    if (workers <= 1 || jobs.len() <= 1) && opts.watchdog.is_none() {
        // Serial quarantine path: no threads at all, same per-job
        // catch_unwind, so SPIDER_JOBS=1 stays the reference leg even
        // for degraded batches.
        let mut results = Vec::with_capacity(jobs.len());
        let mut failures = Vec::new();
        for (i, job) in jobs.iter().enumerate() {
            match catch_unwind(AssertUnwindSafe(|| run(job))) {
                Ok(r) => results.push(Some(r)),
                Err(payload) => {
                    results.push(None);
                    failures.push(quarantine(i, payload));
                }
            }
        }
        return SweepReport {
            results,
            failures,
            hung: Vec::new(),
        };
    }
    let workers = workers.min(jobs.len()).max(1);

    let mut slots: Vec<Option<R>> = Vec::with_capacity(jobs.len());
    slots.resize_with(jobs.len(), || None);
    let next = AtomicUsize::new(0);
    let done = AtomicBool::new(false);
    let run = &run;
    // Watchdog bookkeeping: per worker, the job it is currently on and
    // that job's start offset in milliseconds since the sweep began.
    // `u64::MAX` job marks an idle/finished worker.
    let current_job: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(u64::MAX)).collect();
    let started_ms: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
    // The watchdog measures real elapsed time: hang detection is
    // inherently about the wall clock, and nothing it observes feeds
    // back into job results. lint:allow(wall-clock)
    let epoch = opts.watchdog.map(|_| std::time::Instant::now());

    let mut failures: Vec<JobFailure> = Vec::new();
    let mut hung: Vec<usize> = Vec::new();
    thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for w in 0..workers {
            let current = &current_job[w];
            let started = &started_ms[w];
            let next = &next;
            handles.push(scope.spawn(move || {
                let mut out: Vec<(usize, Result<R, PanicPayload>)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs.len() {
                        break;
                    }
                    if let Some(epoch) = epoch {
                        started.store(epoch.elapsed().as_millis() as u64, Ordering::Relaxed);
                        current.store(i as u64, Ordering::Relaxed);
                    }
                    let r = catch_unwind(AssertUnwindSafe(|| run(&jobs[i])));
                    current.store(u64::MAX, Ordering::Relaxed);
                    out.push((i, r));
                }
                out
            }));
        }
        // The watchdog thread polls the workers' current-job slots and
        // collects any job over the deadline. It only ever *observes*.
        let watchdog = opts.watchdog.map(|deadline| {
            let current = &current_job;
            let started = &started_ms;
            let done = &done;
            let epoch = epoch.expect("watchdog epoch set with deadline");
            scope.spawn(move || {
                let deadline_ms = deadline.as_millis() as u64;
                let tick = (deadline / 8).max(Duration::from_millis(5));
                let mut flagged: Vec<usize> = Vec::new();
                while !done.load(Ordering::Relaxed) {
                    thread::sleep(tick);
                    let now_ms = epoch.elapsed().as_millis() as u64;
                    for (cur, start) in current.iter().zip(started) {
                        let job = cur.load(Ordering::Relaxed);
                        if job != u64::MAX
                            && now_ms.saturating_sub(start.load(Ordering::Relaxed)) > deadline_ms
                        {
                            let job = job as usize;
                            if !flagged.contains(&job) {
                                flagged.push(job);
                            }
                        }
                    }
                }
                flagged
            })
        });
        for handle in handles {
            // Worker threads cannot panic themselves (every job is
            // quarantined), so join() only fails on catastrophic
            // runtime errors — propagate those.
            let out = match handle.join() {
                Ok(out) => out,
                Err(payload) => resume_unwind(payload),
            };
            for (i, r) in out {
                match r {
                    Ok(r) => slots[i] = Some(r),
                    Err(payload) => failures.push(quarantine(i, payload)),
                }
            }
        }
        done.store(true, Ordering::Relaxed);
        if let Some(w) = watchdog {
            if let Ok(mut flagged) = w.join() {
                flagged.sort_unstable();
                hung = flagged;
            }
        }
    });
    failures.sort_unstable_by_key(|f| f.index);

    SweepReport {
        results: slots,
        failures,
        hung,
    }
}

/// What `catch_unwind` hands back from a panicking job.
type PanicPayload = Box<dyn std::any::Any + Send>;

/// Render a panic payload into a human-readable message.
fn panic_message(payload: PanicPayload) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        String::from("<non-string panic payload>")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree() {
        let jobs: Vec<u64> = (0..257).collect();
        let run = |j: &u64| {
            // Cheap but order-sensitive work: a small deterministic hash.
            let mut x = j.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            x ^= x >> 31;
            (x, *j)
        };
        let serial = sweep_with(&jobs, run, 1);
        for workers in [2, 3, 4, 7, 16] {
            assert_eq!(serial, sweep_with(&jobs, run, workers));
        }
    }

    #[test]
    fn forked_sweep_matches_cold_runs_at_any_worker_count() {
        // Model a "world": a counter warmed to the base value, then each
        // job extends a clone. Cold reference = warmup + job in one go.
        let bases: Vec<u64> = vec![100, 2_000, 30_000];
        let jobs: Vec<(usize, u64)> = (0..40).map(|i| (i % 3, i as u64)).collect();
        let warmup = |b: &u64| b * 3; // "advance to the checkpoint"
        let tail = |s: u64, j: &u64| s + j * 7;
        let cold: Vec<u64> = jobs
            .iter()
            .map(|(b, j)| tail(warmup(&bases[*b]), j))
            .collect();
        for workers in [1, 2, 4, 7] {
            assert_eq!(
                forked_sweep_with(&bases, &jobs, warmup, tail, workers),
                cold
            );
        }
    }

    #[test]
    #[should_panic(expected = "only 1 bases were provided")]
    fn forked_sweep_rejects_out_of_range_base() {
        forked_sweep_with(&[1u64], &[(1usize, 0u64)], |b| *b, |s, _| s, 1);
    }

    #[test]
    fn tree_sweep_matches_cold_runs_at_any_worker_count() {
        // A three-level tree: node state = parent state * 3 + own base.
        // Cold reference recomputes every chain from the root.
        let nodes: Vec<(Option<usize>, u64)> = vec![
            (None, 5),     // 0: root
            (Some(0), 11), // 1
            (Some(0), 13), // 2
            (Some(1), 17), // 3: grandchild
            (None, 1_000), // 4: second root
            (Some(4), 19), // 5
        ];
        let grow = |parent: Option<&u64>, base: &u64| parent.copied().unwrap_or(0) * 3 + base;
        let jobs: Vec<(usize, u64)> = (0..30).map(|i| (i % nodes.len(), i as u64)).collect();
        let tail = |s: u64, j: &u64| s * 7 + j;
        let mut chain = vec![0u64; nodes.len()];
        for (i, (parent, base)) in nodes.iter().enumerate() {
            chain[i] = parent.map(|p| chain[p]).unwrap_or(0) * 3 + base;
        }
        let cold: Vec<u64> = jobs.iter().map(|(n, j)| tail(chain[*n], j)).collect();
        for workers in [1, 2, 4, 7] {
            assert_eq!(
                forked_sweep_tree_with(&nodes, &jobs, grow, tail, workers),
                cold
            );
        }
    }

    #[test]
    fn grow_tree_runs_children_after_parents() {
        // Deep chain: each node adds its own index; any child grown
        // before its parent would observe a missing (panicking) state.
        let nodes: Vec<(Option<usize>, usize)> =
            (0..50usize).map(|i| (i.checked_sub(1), i)).collect();
        let states = grow_tree_with(
            &nodes,
            |parent: Option<&usize>, base| parent.copied().unwrap_or(0) + base,
            4,
        );
        let expected: Vec<usize> = (0..50).map(|i| i * (i + 1) / 2).collect();
        assert_eq!(states, expected);
    }

    #[test]
    #[should_panic(expected = "parents must precede children")]
    fn grow_tree_rejects_forward_parent_links() {
        grow_tree_with(
            &[(Some(1), 0u64), (None, 1u64)],
            |p: Option<&u64>, b| p.copied().unwrap_or(0) + b,
            1,
        );
    }

    #[test]
    fn results_are_in_job_order() {
        let jobs: Vec<usize> = (0..64).rev().collect();
        let out = sweep_with(&jobs, |j| *j, 4);
        assert_eq!(out, jobs);
    }

    #[test]
    fn many_tiny_jobs_stress_worker_handoff() {
        // Thousands of near-empty jobs: the atomic handoff dominates, so
        // any double-claim or lost index shows up as a wrong slot.
        let jobs: Vec<u32> = (0..10_000).collect();
        let out = sweep_with(&jobs, |j| j + 1, 8);
        assert_eq!(out.len(), jobs.len());
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as u32 + 1);
        }
    }

    #[test]
    fn empty_and_single_job_lists() {
        let none: Vec<u8> = Vec::new();
        assert!(sweep_with(&none, |j| *j, 4).is_empty());
        assert_eq!(sweep_with(&[9u8], |j| *j, 4), vec![9]);
    }

    #[test]
    fn panic_in_job_propagates() {
        let jobs: Vec<u32> = (0..100).collect();
        let caught = std::panic::catch_unwind(|| {
            sweep_with(
                &jobs,
                |j| {
                    if *j == 37 {
                        panic!("job 37 failed");
                    }
                    *j
                },
                4,
            )
        });
        assert!(caught.is_err());
    }

    #[test]
    fn worker_count_is_at_least_one() {
        assert!(worker_count() >= 1);
    }

    #[test]
    fn spider_jobs_parses_positive_integers() {
        assert_eq!(parse_spider_jobs("1"), 1);
        assert_eq!(parse_spider_jobs(" 8 "), 8);
        assert_eq!(parse_spider_jobs("137"), 137);
    }

    #[test]
    #[should_panic(expected = "SPIDER_JOBS=0 is invalid")]
    fn spider_jobs_zero_panics() {
        parse_spider_jobs("0");
    }

    #[test]
    #[should_panic(expected = "not a positive integer")]
    fn spider_jobs_garbage_panics() {
        parse_spider_jobs("fast");
    }

    #[test]
    #[should_panic(expected = "not a positive integer")]
    fn spider_jobs_empty_panics() {
        parse_spider_jobs("");
    }

    #[test]
    #[should_panic(expected = "not a positive integer")]
    fn spider_jobs_negative_panics() {
        parse_spider_jobs("-2");
    }

    /// The quarantine run used by the try_sweep tests: job 37 panics
    /// with a formatted message, everything else squares.
    fn flaky(j: &u32) -> u64 {
        if *j == 37 {
            panic!("job {j} exploded");
        }
        (*j as u64) * (*j as u64)
    }

    #[test]
    fn try_sweep_quarantines_a_panicking_job() {
        let jobs: Vec<u32> = (0..100).collect();
        for workers in [1, 4] {
            let report = try_sweep_with(
                &jobs,
                flaky,
                |j| format!("seed={j}"),
                SweepOptions {
                    workers,
                    watchdog: None,
                },
            );
            assert!(!report.is_complete());
            assert_eq!(report.results.len(), 100);
            assert_eq!(report.successes().count(), 99);
            assert!(report.results[37].is_none());
            assert_eq!(report.failures.len(), 1);
            let f = &report.failures[0];
            assert_eq!(f.index, 37);
            assert_eq!(f.message, "job 37 exploded");
            assert_eq!(f.fingerprint, "seed=37");
            assert!(report.hung.is_empty());
            // Every surviving slot matches the serial map.
            for (i, r) in report.successes() {
                assert_eq!(*r, (i as u64) * (i as u64));
            }
        }
    }

    #[test]
    fn try_sweep_complete_matches_sweep_bit_for_bit() {
        let jobs: Vec<u64> = (0..257).collect();
        let run = |j: &u64| {
            let mut x = j.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            x ^= x >> 31;
            (x, *j)
        };
        let baseline = sweep_with(&jobs, run, 1);
        for workers in [1, 2, 4, 7] {
            let report = try_sweep_with(
                &jobs,
                run,
                |j| j.to_string(),
                SweepOptions {
                    workers,
                    watchdog: None,
                },
            );
            assert!(report.is_complete());
            assert_eq!(report.expect_complete("test"), baseline);
        }
    }

    #[test]
    fn try_sweep_multiple_failures_report_in_job_order() {
        let jobs: Vec<u32> = (0..64).collect();
        let report = try_sweep_with(
            &jobs,
            |j| {
                if j % 10 == 3 {
                    panic!("bad");
                }
                *j
            },
            |j| j.to_string(),
            SweepOptions {
                workers: 4,
                watchdog: None,
            },
        );
        let indices: Vec<usize> = report.failures.iter().map(|f| f.index).collect();
        assert_eq!(indices, vec![3, 13, 23, 33, 43, 53, 63]);
        assert_eq!(report.successes().count(), 64 - 7);
    }

    #[test]
    #[should_panic(expected = "sweep degraded")]
    fn expect_complete_panics_on_degraded_sweep() {
        let jobs: Vec<u32> = (0..4).collect();
        let report = try_sweep(
            &jobs,
            |j| {
                if *j == 2 {
                    panic!("boom");
                }
                *j
            },
            |j| j.to_string(),
        );
        report.expect_complete("degraded batch");
    }

    #[test]
    fn watchdog_flags_a_slow_job() {
        let jobs: Vec<u32> = (0..8).collect();
        let report = try_sweep_with(
            &jobs,
            |j| {
                if *j == 5 {
                    // Long enough for several watchdog ticks past the
                    // 20 ms deadline, short enough to keep tests quick.
                    thread::sleep(Duration::from_millis(200));
                }
                *j
            },
            |j| j.to_string(),
            SweepOptions {
                workers: 4,
                watchdog: Some(Duration::from_millis(20)),
            },
        );
        // The slow job still completes — the watchdog only names it.
        assert!(report.is_complete());
        assert_eq!(report.hung, vec![5]);
    }

    #[test]
    fn watchdog_stays_quiet_for_fast_jobs() {
        let jobs: Vec<u32> = (0..32).collect();
        let report = try_sweep_with(
            &jobs,
            |j| *j,
            |j| j.to_string(),
            SweepOptions {
                workers: 4,
                watchdog: Some(Duration::from_secs(5)),
            },
        );
        assert!(report.is_complete());
        assert!(report.hung.is_empty());
    }
}
