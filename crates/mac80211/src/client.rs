//! Client-side association state machine (one per virtual interface).
//!
//! A Wi-Fi join at the link layer is a two-exchange handshake:
//! authentication (request/response) then association (request/response).
//! Each outgoing message has a retry timer — the paper's "link-layer
//! timeout", 1 s in stock drivers, reduced to 100 ms by Spider and
//! Cabernet (§2.2.1, footnote 1: the timeout is per message, not for the
//! whole handshake).
//!
//! The machine only transmits while the driver has the radio on the
//! target's channel (`on_channel` argument to [`InterfaceMac::poll`]);
//! timers keep running regardless, which is exactly why fractional
//! channel schedules hurt join success (§2.1).

use crate::stats::JoinLog;
use spider_simcore::{SimDuration, SimTime};
use spider_wire::{Channel, Frame, FrameBody, MacAddr, Ssid};

/// Link-layer configuration.
#[derive(Debug, Clone)]
pub struct ClientMacConfig {
    /// Per-message retry timeout (the tunable "link-layer timeout").
    pub link_timeout: SimDuration,
    /// Maximum transmissions per message before the join attempt is
    /// abandoned.
    pub max_attempts: u32,
}

impl ClientMacConfig {
    /// Stock driver timers: 1 s per message.
    pub fn stock() -> ClientMacConfig {
        ClientMacConfig {
            link_timeout: SimDuration::from_secs(1),
            max_attempts: 5,
        }
    }

    /// Reduced timers per Eriksson et al. and Spider: 100 ms.
    pub fn reduced() -> ClientMacConfig {
        ClientMacConfig {
            link_timeout: SimDuration::from_millis(100),
            max_attempts: 5,
        }
    }
}

/// The AP an interface is joining.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApTarget {
    /// AP BSSID.
    pub bssid: MacAddr,
    /// Network name.
    pub ssid: Ssid,
    /// Operating channel.
    pub channel: Channel,
}

/// Association progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssocState {
    /// No join in progress.
    Idle,
    /// Authentication request outstanding.
    Authenticating {
        /// Transmissions so far.
        attempt: u32,
        /// When the current transmission times out.
        deadline: SimTime,
    },
    /// Association request outstanding.
    Associating {
        /// Transmissions so far.
        attempt: u32,
        /// When the current transmission times out.
        deadline: SimTime,
    },
    /// Join complete.
    Associated {
        /// Association id granted by the AP.
        aid: u16,
    },
}

/// Events produced by the state machine.
#[derive(Debug, Clone)]
pub enum MacEvent {
    /// Transmit this frame (only emitted while `on_channel`).
    Send(Frame),
    /// Association completed.
    Associated {
        /// The AP joined.
        bssid: MacAddr,
        /// Time from join start to association.
        elapsed: SimDuration,
    },
    /// The join attempt was abandoned (retries exhausted).
    JoinFailed {
        /// The AP that was being joined.
        bssid: MacAddr,
    },
    /// The AP deauthenticated us (or we processed a Deauth).
    Deauthenticated {
        /// The AP that dropped us.
        bssid: MacAddr,
    },
}

/// Per-interface client MAC.
#[derive(Debug, Clone)]
pub struct InterfaceMac {
    /// This interface's MAC address.
    pub addr: MacAddr,
    cfg: ClientMacConfig,
    target: Option<ApTarget>,
    state: AssocState,
    join_started: SimTime,
    /// Pending initial transmission (set by `start_join` / auth success,
    /// consumed by `poll`).
    needs_tx: bool,
}

impl InterfaceMac {
    /// Create an idle interface.
    pub fn new(addr: MacAddr, cfg: ClientMacConfig) -> InterfaceMac {
        InterfaceMac {
            addr,
            cfg,
            target: None,
            state: AssocState::Idle,
            join_started: SimTime::ZERO,
            needs_tx: false,
        }
    }

    /// Replace the link-layer configuration (timeout tuning experiments).
    pub fn set_config(&mut self, cfg: ClientMacConfig) {
        self.cfg = cfg;
    }

    /// Current state.
    pub fn state(&self) -> AssocState {
        self.state
    }

    /// The AP this interface targets (or is associated with).
    pub fn target(&self) -> Option<&ApTarget> {
        self.target.as_ref()
    }

    /// Whether the interface has completed association.
    pub fn is_associated(&self) -> bool {
        matches!(self.state, AssocState::Associated { .. })
    }

    /// When the interface began its current join attempt.
    pub fn join_started(&self) -> SimTime {
        self.join_started
    }

    /// Begin joining `target` at `now`. Any previous state is discarded.
    pub fn start_join(&mut self, now: SimTime, target: ApTarget) {
        self.target = Some(target);
        self.state = AssocState::Authenticating {
            attempt: 0,
            deadline: now,
        };
        self.join_started = now;
        self.needs_tx = true;
    }

    /// Drop the association / abandon the join and go idle.
    pub fn reset(&mut self) {
        self.target = None;
        self.state = AssocState::Idle;
        self.needs_tx = false;
    }

    /// Timer processing. `on_channel` must be true iff the radio is tuned
    /// to the target's channel; transmissions only happen then. Returns
    /// any events (sends, failure).
    pub fn poll(&mut self, now: SimTime, on_channel: bool) -> Vec<MacEvent> {
        let mut out = Vec::new();
        let Some(target) = self.target.clone() else {
            return out;
        };
        match self.state {
            AssocState::Authenticating { attempt, deadline } => {
                if now >= deadline && !on_channel && attempt < self.cfg.max_attempts {
                    // Off-channel: slide the timer so wakeups progress.
                    self.state = AssocState::Authenticating {
                        attempt,
                        deadline: now + self.cfg.link_timeout,
                    };
                }
                if (self.needs_tx || now >= deadline) && on_channel {
                    if attempt >= self.cfg.max_attempts {
                        self.state = AssocState::Idle;
                        self.needs_tx = false;
                        out.push(MacEvent::JoinFailed {
                            bssid: target.bssid,
                        });
                        return out;
                    }
                    self.needs_tx = false;
                    self.state = AssocState::Authenticating {
                        attempt: attempt + 1,
                        deadline: now + self.cfg.link_timeout,
                    };
                    out.push(MacEvent::Send(Frame {
                        src: self.addr,
                        dst: target.bssid,
                        bssid: target.bssid,
                        body: FrameBody::AuthRequest,
                    }));
                } else if now >= deadline && attempt >= self.cfg.max_attempts {
                    // Timed out while off-channel with no attempts left.
                    self.state = AssocState::Idle;
                    out.push(MacEvent::JoinFailed {
                        bssid: target.bssid,
                    });
                }
            }
            AssocState::Associating { attempt, deadline } => {
                if now >= deadline && !on_channel && attempt < self.cfg.max_attempts {
                    self.state = AssocState::Associating {
                        attempt,
                        deadline: now + self.cfg.link_timeout,
                    };
                }
                if (self.needs_tx || now >= deadline) && on_channel {
                    if attempt >= self.cfg.max_attempts {
                        self.state = AssocState::Idle;
                        self.needs_tx = false;
                        out.push(MacEvent::JoinFailed {
                            bssid: target.bssid,
                        });
                        return out;
                    }
                    self.needs_tx = false;
                    self.state = AssocState::Associating {
                        attempt: attempt + 1,
                        deadline: now + self.cfg.link_timeout,
                    };
                    out.push(MacEvent::Send(Frame {
                        src: self.addr,
                        dst: target.bssid,
                        bssid: target.bssid,
                        body: FrameBody::AssocRequest {
                            ssid: target.ssid.clone(),
                        },
                    }));
                } else if now >= deadline && attempt >= self.cfg.max_attempts {
                    self.state = AssocState::Idle;
                    out.push(MacEvent::JoinFailed {
                        bssid: target.bssid,
                    });
                }
            }
            AssocState::Idle | AssocState::Associated { .. } => {}
        }
        out
    }

    /// The next instant `poll` needs to run, or [`SimTime::MAX`].
    pub fn next_wakeup(&self) -> SimTime {
        match self.state {
            AssocState::Authenticating { deadline, .. }
            | AssocState::Associating { deadline, .. } => deadline,
            _ => SimTime::MAX,
        }
    }

    /// Process a frame addressed to (or relevant to) this interface.
    pub fn on_frame(&mut self, now: SimTime, frame: &Frame, log: &mut JoinLog) -> Vec<MacEvent> {
        let mut out = Vec::new();
        let Some(target) = self.target.clone() else {
            return out;
        };
        if frame.src != target.bssid {
            return out;
        }
        match (&self.state, &frame.body) {
            (AssocState::Authenticating { .. }, FrameBody::AuthResponse { ok }) => {
                if *ok {
                    self.state = AssocState::Associating {
                        attempt: 0,
                        deadline: now,
                    };
                    self.needs_tx = true;
                    // Immediately emit the association request if we can:
                    // the caller will poll us again; nothing sent here.
                } else {
                    self.state = AssocState::Idle;
                    log.assoc_failures += 1;
                    out.push(MacEvent::JoinFailed {
                        bssid: target.bssid,
                    });
                }
            }
            (AssocState::Associating { .. }, FrameBody::AssocResponse { ok, aid }) => {
                if *ok {
                    self.state = AssocState::Associated { aid: *aid };
                    let elapsed = now.saturating_since(self.join_started);
                    log.record_assoc(now, elapsed);
                    out.push(MacEvent::Associated {
                        bssid: target.bssid,
                        elapsed,
                    });
                } else {
                    self.state = AssocState::Idle;
                    log.assoc_failures += 1;
                    out.push(MacEvent::JoinFailed {
                        bssid: target.bssid,
                    });
                }
            }
            (_, FrameBody::Deauth { .. }) if !matches!(self.state, AssocState::Idle) => {
                self.state = AssocState::Idle;
                out.push(MacEvent::Deauthenticated {
                    bssid: target.bssid,
                });
            }
            _ => {}
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target() -> ApTarget {
        ApTarget {
            bssid: MacAddr::from_id(100),
            ssid: "ap".into(),
            channel: Channel::CH6,
        }
    }

    fn auth_ok() -> Frame {
        Frame {
            src: MacAddr::from_id(100),
            dst: MacAddr::from_id(1),
            bssid: MacAddr::from_id(100),
            body: FrameBody::AuthResponse { ok: true },
        }
    }

    fn assoc_ok() -> Frame {
        Frame {
            src: MacAddr::from_id(100),
            dst: MacAddr::from_id(1),
            bssid: MacAddr::from_id(100),
            body: FrameBody::AssocResponse { ok: true, aid: 7 },
        }
    }

    fn new_iface() -> (InterfaceMac, JoinLog) {
        (
            InterfaceMac::new(MacAddr::from_id(1), ClientMacConfig::reduced()),
            JoinLog::new(),
        )
    }

    #[test]
    fn happy_path_join() {
        let (mut mac, mut log) = new_iface();
        let t0 = SimTime::from_millis(10);
        mac.start_join(t0, target());
        // First poll on-channel emits an auth request.
        let ev = mac.poll(t0, true);
        assert!(matches!(&ev[..], [MacEvent::Send(f)] if matches!(f.body, FrameBody::AuthRequest)));
        // Auth response moves to associating; next poll emits assoc req.
        let t1 = SimTime::from_millis(30);
        assert!(mac.on_frame(t1, &auth_ok(), &mut log).is_empty());
        let ev = mac.poll(t1, true);
        assert!(
            matches!(&ev[..], [MacEvent::Send(f)] if matches!(f.body, FrameBody::AssocRequest{..}))
        );
        // Assoc response completes the join.
        let t2 = SimTime::from_millis(50);
        let ev = mac.on_frame(t2, &assoc_ok(), &mut log);
        assert!(matches!(
            &ev[..],
            [MacEvent::Associated { elapsed, .. }] if *elapsed == SimDuration::from_millis(40)
        ));
        assert!(mac.is_associated());
        assert_eq!(log.assoc.len(), 1);
    }

    #[test]
    fn retries_until_timeout_then_fails() {
        let (mut mac, _log) = new_iface();
        let t0 = SimTime::ZERO;
        mac.start_join(t0, target());
        let mut sends = 0;
        let mut t = t0;
        let mut failed = false;
        for _ in 0..20 {
            for ev in mac.poll(t, true) {
                match ev {
                    MacEvent::Send(_) => sends += 1,
                    MacEvent::JoinFailed { .. } => failed = true,
                    _ => {}
                }
            }
            if failed {
                break;
            }
            t += SimDuration::from_millis(100);
        }
        assert_eq!(sends, 5, "max_attempts transmissions");
        assert!(failed);
        assert_eq!(mac.state(), AssocState::Idle);
    }

    #[test]
    fn no_transmission_while_off_channel() {
        let (mut mac, _log) = new_iface();
        mac.start_join(SimTime::ZERO, target());
        // Off channel: nothing is sent, no attempts consumed.
        for i in 0..10 {
            let ev = mac.poll(SimTime::from_millis(i * 100), false);
            assert!(ev.is_empty());
        }
        // Back on channel: first transmission happens.
        let ev = mac.poll(SimTime::from_secs(2), true);
        assert!(matches!(&ev[..], [MacEvent::Send(_)]));
    }

    #[test]
    fn response_from_wrong_ap_is_ignored() {
        let (mut mac, mut log) = new_iface();
        mac.start_join(SimTime::ZERO, target());
        mac.poll(SimTime::ZERO, true);
        let mut wrong = auth_ok();
        wrong.src = MacAddr::from_id(999);
        assert!(mac
            .on_frame(SimTime::from_millis(1), &wrong, &mut log)
            .is_empty());
        assert!(matches!(mac.state(), AssocState::Authenticating { .. }));
    }

    #[test]
    fn auth_rejection_fails_join() {
        let (mut mac, mut log) = new_iface();
        mac.start_join(SimTime::ZERO, target());
        mac.poll(SimTime::ZERO, true);
        let rej = Frame {
            body: FrameBody::AuthResponse { ok: false },
            ..auth_ok()
        };
        let ev = mac.on_frame(SimTime::from_millis(1), &rej, &mut log);
        assert!(matches!(&ev[..], [MacEvent::JoinFailed { .. }]));
        assert_eq!(log.assoc_failures, 1);
    }

    #[test]
    fn deauth_drops_association() {
        let (mut mac, mut log) = new_iface();
        mac.start_join(SimTime::ZERO, target());
        mac.poll(SimTime::ZERO, true);
        mac.on_frame(SimTime::from_millis(1), &auth_ok(), &mut log);
        mac.poll(SimTime::from_millis(1), true);
        mac.on_frame(SimTime::from_millis(2), &assoc_ok(), &mut log);
        assert!(mac.is_associated());
        let deauth = Frame {
            body: FrameBody::Deauth { reason: 1 },
            ..auth_ok()
        };
        let ev = mac.on_frame(SimTime::from_millis(3), &deauth, &mut log);
        assert!(matches!(&ev[..], [MacEvent::Deauthenticated { .. }]));
        assert_eq!(mac.state(), AssocState::Idle);
    }

    #[test]
    fn wakeup_reflects_deadline() {
        let (mut mac, _log) = new_iface();
        assert_eq!(mac.next_wakeup(), SimTime::MAX);
        mac.start_join(SimTime::ZERO, target());
        mac.poll(SimTime::ZERO, true);
        assert_eq!(mac.next_wakeup(), SimTime::from_millis(100));
    }

    #[test]
    fn stale_auth_response_after_idle_is_ignored() {
        let (mut mac, mut log) = new_iface();
        mac.start_join(SimTime::ZERO, target());
        mac.reset();
        assert!(mac
            .on_frame(SimTime::from_millis(5), &auth_ok(), &mut log)
            .is_empty());
    }
}
