//! The driver API between the simulation world and a client system.
//!
//! A *client system* is everything that runs on the mobile node: the
//! (virtualised or stock) Wi-Fi driver, the link-management logic, the
//! DHCP clients and the transport endpoints. The world owns the radio
//! and the medium; the client system reacts to received frames and timer
//! wakeups by emitting [`DriverAction`]s.
//!
//! The contract:
//!
//! * The world delivers a frame via [`ClientSystem::on_frame`] only when
//!   the radio is tuned to the frame's channel (and the frame survived
//!   propagation and loss).
//! * `SwitchChannel` starts a hardware switch; the radio is deaf until
//!   the world calls [`ClientSystem::on_switch_complete`].
//! * [`ClientSystem::poll`] is called whenever simulated time reaches
//!   [`ClientSystem::next_wakeup`].
//! * `Transmit` actions are honoured only while tuned; the world drops
//!   transmissions requested mid-switch (a real card's TX queue is held
//!   in reset).

use crate::stats::JoinLog;
use spider_simcore::SimTime;
use spider_wire::{Channel, Frame};

/// A frame as received by the client radio.
///
/// The frame is borrowed from the delivering air event: a broadcast
/// delivered to many stations hands each receiver a view of the same
/// `Arc`'d frame, and a unicast frame is read straight out of its boxed
/// event payload — neither path clones the payload or touches a
/// refcount at delivery time. Receivers only read the frame, which
/// shared access enforces.
#[derive(Debug, Clone)]
pub struct RxFrame<'a> {
    /// The frame.
    pub frame: &'a Frame,
    /// Channel it was received on.
    pub channel: Channel,
    /// Received signal strength, attached only to the frames that carry
    /// scanning value (beacons and probe responses). Data and control
    /// frames arrive with `None`: delivery already implies the sender
    /// was in range, no driver reads signal strength off them, and the
    /// log-distance RSSI computation is too expensive to run for every
    /// TCP segment in a dense cell.
    pub rssi_dbm: Option<f64>,
}

/// An owned frame + reception metadata that lends out [`RxFrame`] views.
///
/// Production delivery borrows frames straight out of air-event payloads;
/// tests and other callers that build frames on the spot park them here
/// and call [`RxBuf::rx`].
#[derive(Debug, Clone)]
pub struct RxBuf {
    /// The frame.
    pub frame: Frame,
    /// Channel it was received on.
    pub channel: Channel,
    /// Received signal strength (see [`RxFrame::rssi_dbm`]).
    pub rssi_dbm: Option<f64>,
}

impl RxBuf {
    /// Borrow this buffer as the [`RxFrame`] a client system receives.
    pub fn rx(&self) -> RxFrame<'_> {
        RxFrame {
            frame: &self.frame,
            channel: self.channel,
            rssi_dbm: self.rssi_dbm,
        }
    }
}

/// An action requested by the client system.
#[derive(Debug, Clone)]
pub enum DriverAction {
    /// Transmit a frame from virtual interface `iface`. The frame's
    /// `src` must be that interface's MAC address.
    Transmit {
        /// Index of the virtual interface transmitting.
        iface: usize,
        /// The frame to put on the air.
        frame: Frame,
    },
    /// Begin a hardware channel switch.
    SwitchChannel(Channel),
}

/// The client-state snapshot the world takes after every event it
/// delivers into the client system (see [`ClientSystem::observe`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClientObservation {
    /// [`ClientSystem::delivered_bytes`] at this instant.
    pub delivered_bytes: u64,
    /// [`ClientSystem::is_connected`] at this instant.
    pub connected: bool,
    /// [`ClientSystem::next_wakeup`] at this instant.
    pub next_wakeup: SimTime,
}

/// A complete client-side system (driver + link management + network
/// stack), driven by the simulation world.
pub trait ClientSystem {
    /// Human-readable configuration name (appears in experiment output).
    fn label(&self) -> String;

    /// A frame arrived while tuned to `rx.channel`. Actions are appended
    /// to `out`, a caller-owned buffer: frame delivery is the hottest
    /// call in the simulation, and reusing one buffer across events
    /// avoids a vector allocation per received frame.
    ///
    /// Contract: a **broadcast beacon** that provokes no actions may only
    /// feed passive scanning state (signal tables, candidate lists) — it
    /// must not change anything the world observes between events
    /// ([`delivered_bytes`](Self::delivered_bytes),
    /// [`is_connected`](Self::is_connected),
    /// [`next_wakeup`](Self::next_wakeup)). Beacons dominate the event
    /// stream in dense deployments, and the world uses this guarantee to
    /// skip its per-event client inspection for them.
    fn on_frame_into(&mut self, now: SimTime, rx: &RxFrame<'_>, out: &mut Vec<DriverAction>);

    /// Allocating convenience wrapper around
    /// [`on_frame_into`](Self::on_frame_into) (tests and cold paths).
    fn on_frame(&mut self, now: SimTime, rx: &RxFrame<'_>) -> Vec<DriverAction> {
        let mut out = Vec::new();
        self.on_frame_into(now, rx, &mut out);
        out
    }

    /// A previously requested channel switch completed; the radio is now
    /// tuned to `ch`.
    fn on_switch_complete_into(&mut self, now: SimTime, ch: Channel, out: &mut Vec<DriverAction>);

    /// Allocating convenience wrapper around
    /// [`on_switch_complete_into`](Self::on_switch_complete_into).
    fn on_switch_complete(&mut self, now: SimTime, ch: Channel) -> Vec<DriverAction> {
        let mut out = Vec::new();
        self.on_switch_complete_into(now, ch, &mut out);
        out
    }

    /// Timer-driven processing. Called at least whenever `now` reaches
    /// the time previously returned by [`next_wakeup`](Self::next_wakeup).
    fn poll_into(&mut self, now: SimTime, out: &mut Vec<DriverAction>);

    /// Allocating convenience wrapper around
    /// [`poll_into`](Self::poll_into).
    fn poll(&mut self, now: SimTime) -> Vec<DriverAction> {
        let mut out = Vec::new();
        self.poll_into(now, &mut out);
        out
    }

    /// The next instant this system needs a `poll` call, or
    /// [`SimTime::MAX`] if it is fully idle.
    fn next_wakeup(&self, now: SimTime) -> SimTime;

    /// Join/association timing log for the evaluation harness.
    fn join_log(&self) -> &JoinLog;

    /// Whether the system currently believes it has end-to-end
    /// connectivity on any interface (used for connectivity accounting).
    fn is_connected(&self) -> bool;

    /// Cumulative application bytes delivered in order across all
    /// interfaces (the throughput every evaluation figure measures).
    fn delivered_bytes(&self) -> u64;

    /// The post-event snapshot the world records after every event that
    /// drove the client: delivered bytes, connectivity, and the next
    /// wakeup, taken together. Semantically identical to calling the
    /// three accessors separately — which is exactly what this default
    /// does — but systems whose accessors each walk per-interface state
    /// should override it with a single fused walk: the world calls this
    /// once per delivered event, making it one of the hottest reads in a
    /// dense simulation.
    fn observe(&self, now: SimTime) -> ClientObservation {
        ClientObservation {
            delivered_bytes: self.delivered_bytes(),
            connected: self.is_connected(),
            next_wakeup: self.next_wakeup(now),
        }
    }

    /// Number of interfaces currently associated at the link layer. The
    /// radio's channel-switch latency grows with this count (PSM frames
    /// around the hardware reset — Table 1).
    fn associated_interfaces(&self) -> usize {
        0
    }

    /// The channel this system assumes the radio is tuned to at t = 0.
    /// The world initialises the physical radio accordingly.
    fn initial_channel(&self) -> Channel;

    /// Whether this system could ever join an AP on `ch` under its
    /// current configuration. The world's fault-recovery clock uses
    /// this to decide which in-range APs count as recovery candidates:
    /// an AP on a channel the client never visits cannot end an
    /// outage, so time covered only by such APs is a mobility bound,
    /// not recovery latency. Defaults to every channel being usable.
    fn can_use_channel(&self, _ch: Channel) -> bool {
        true
    }

    /// Deep-clone this system into a boxed trait object — the snapshot
    /// hook behind `World::fork` (DESIGN.md §13). A checkpointed world
    /// clones its client system alongside the event queue and RNG
    /// streams; when the client is held as `dyn ClientSystem`, this is
    /// the only way to copy it. Implementations must produce a clone
    /// that resumes **bit-identically**: every timer, sequence number,
    /// RNG stream, cache and log the system owns is part of the
    /// snapshot. For `Clone` systems this is just
    /// `Box::new(self.clone())`.
    fn clone_boxed(&self) -> Box<dyn ClientSystem + Send>;
}

// A boxed client system is itself a client system, so worlds can hold
// `World<Box<dyn ClientSystem + Send>>` and still snapshot/fork: `Clone`
// for the box routes through `clone_boxed`.
impl ClientSystem for Box<dyn ClientSystem + Send> {
    fn label(&self) -> String {
        (**self).label()
    }
    fn on_frame_into(&mut self, now: SimTime, rx: &RxFrame<'_>, out: &mut Vec<DriverAction>) {
        (**self).on_frame_into(now, rx, out)
    }
    fn on_switch_complete_into(&mut self, now: SimTime, ch: Channel, out: &mut Vec<DriverAction>) {
        (**self).on_switch_complete_into(now, ch, out)
    }
    fn poll_into(&mut self, now: SimTime, out: &mut Vec<DriverAction>) {
        (**self).poll_into(now, out)
    }
    fn next_wakeup(&self, now: SimTime) -> SimTime {
        (**self).next_wakeup(now)
    }
    fn join_log(&self) -> &JoinLog {
        (**self).join_log()
    }
    fn is_connected(&self) -> bool {
        (**self).is_connected()
    }
    fn delivered_bytes(&self) -> u64 {
        (**self).delivered_bytes()
    }
    fn observe(&self, now: SimTime) -> ClientObservation {
        (**self).observe(now)
    }
    fn associated_interfaces(&self) -> usize {
        (**self).associated_interfaces()
    }
    fn initial_channel(&self) -> Channel {
        (**self).initial_channel()
    }
    fn can_use_channel(&self, ch: Channel) -> bool {
        (**self).can_use_channel(ch)
    }
    fn clone_boxed(&self) -> Box<dyn ClientSystem + Send> {
        (**self).clone_boxed()
    }
}

impl Clone for Box<dyn ClientSystem + Send> {
    fn clone(&self) -> Self {
        (**self).clone_boxed()
    }
}
