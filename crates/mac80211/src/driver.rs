//! The driver API between the simulation world and a client system.
//!
//! A *client system* is everything that runs on the mobile node: the
//! (virtualised or stock) Wi-Fi driver, the link-management logic, the
//! DHCP clients and the transport endpoints. The world owns the radio
//! and the medium; the client system reacts to received frames and timer
//! wakeups by emitting [`DriverAction`]s.
//!
//! The contract:
//!
//! * The world delivers a frame via [`ClientSystem::on_frame`] only when
//!   the radio is tuned to the frame's channel (and the frame survived
//!   propagation and loss).
//! * `SwitchChannel` starts a hardware switch; the radio is deaf until
//!   the world calls [`ClientSystem::on_switch_complete`].
//! * [`ClientSystem::poll`] is called whenever simulated time reaches
//!   [`ClientSystem::next_wakeup`].
//! * `Transmit` actions are honoured only while tuned; the world drops
//!   transmissions requested mid-switch (a real card's TX queue is held
//!   in reset).

use crate::stats::JoinLog;
use spider_simcore::SimTime;
use spider_wire::{Channel, Frame};

/// A frame as received by the client radio.
#[derive(Debug, Clone)]
pub struct RxFrame {
    /// The frame.
    pub frame: Frame,
    /// Channel it was received on.
    pub channel: Channel,
    /// Received signal strength.
    pub rssi_dbm: f64,
}

/// An action requested by the client system.
#[derive(Debug, Clone)]
pub enum DriverAction {
    /// Transmit a frame from virtual interface `iface`. The frame's
    /// `src` must be that interface's MAC address.
    Transmit {
        /// Index of the virtual interface transmitting.
        iface: usize,
        /// The frame to put on the air.
        frame: Frame,
    },
    /// Begin a hardware channel switch.
    SwitchChannel(Channel),
}

/// A complete client-side system (driver + link management + network
/// stack), driven by the simulation world.
pub trait ClientSystem {
    /// Human-readable configuration name (appears in experiment output).
    fn label(&self) -> String;

    /// A frame arrived while tuned to `rx.channel`.
    fn on_frame(&mut self, now: SimTime, rx: &RxFrame) -> Vec<DriverAction>;

    /// A previously requested channel switch completed; the radio is now
    /// tuned to `ch`.
    fn on_switch_complete(&mut self, now: SimTime, ch: Channel) -> Vec<DriverAction>;

    /// Timer-driven processing. Called at least whenever `now` reaches
    /// the time previously returned by [`next_wakeup`](Self::next_wakeup).
    fn poll(&mut self, now: SimTime) -> Vec<DriverAction>;

    /// The next instant this system needs a `poll` call, or
    /// [`SimTime::MAX`] if it is fully idle.
    fn next_wakeup(&self, now: SimTime) -> SimTime;

    /// Join/association timing log for the evaluation harness.
    fn join_log(&self) -> &JoinLog;

    /// Whether the system currently believes it has end-to-end
    /// connectivity on any interface (used for connectivity accounting).
    fn is_connected(&self) -> bool;

    /// Cumulative application bytes delivered in order across all
    /// interfaces (the throughput every evaluation figure measures).
    fn delivered_bytes(&self) -> u64;

    /// Number of interfaces currently associated at the link layer. The
    /// radio's channel-switch latency grows with this count (PSM frames
    /// around the hardware reset — Table 1).
    fn associated_interfaces(&self) -> usize {
        0
    }

    /// The channel this system assumes the radio is tuned to at t = 0.
    /// The world initialises the physical radio accordingly.
    fn initial_channel(&self) -> Channel;
}
