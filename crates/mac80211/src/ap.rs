//! Access-point MAC.
//!
//! Handles beaconing, probe/auth/association responses, and per-client
//! power-save (PSM) buffering — the mechanism every virtual-Wi-Fi system
//! relies on: a client claiming to sleep makes the AP queue its downlink
//! frames, freeing the client to serve other APs (§2).
//!
//! One deliberate fidelity choice, documented in DESIGN.md: frames whose
//! upper-layer payload is a *join message* (DHCP) are **not** buffered
//! for sleeping clients. The paper's measurements show DHCP gains nothing
//! from PSM — offers are time-sensitive and the exchange simply fails if
//! the client is away (§1: "the packets associated with the join process
//! cannot be buffered by the PSM request"). Callers mark such frames
//! `bufferable = false` in [`ApMac::enqueue_downlink`].

use spider_simcore::{FxHashMap, SimDuration, SimTime};
use spider_wire::{AirFrame, Channel, Frame, FrameBody, Ipv4Packet, MacAddr, SharedFrame, Ssid};
use std::collections::hash_map::Entry;
use std::collections::VecDeque;
use std::sync::Arc;

/// AP configuration.
#[derive(Debug, Clone)]
pub struct ApConfig {
    /// The AP's BSSID.
    pub bssid: MacAddr,
    /// Network name.
    pub ssid: Ssid,
    /// Operating channel.
    pub channel: Channel,
    /// Beacon period (102.4 ms on real hardware).
    pub beacon_interval: SimDuration,
    /// Maximum frames buffered per sleeping client.
    pub psm_buffer_cap: usize,
    /// Buffered frames older than this are discarded at flush time.
    pub psm_max_age: SimDuration,
    /// Maximum simultaneously associated clients.
    pub max_clients: usize,
}

impl ApConfig {
    /// A typical open residential AP.
    pub fn open(bssid: MacAddr, ssid: Ssid, channel: Channel) -> ApConfig {
        ApConfig {
            bssid,
            ssid,
            channel,
            beacon_interval: SimDuration::from_micros(102_400),
            psm_buffer_cap: 100,
            psm_max_age: SimDuration::from_secs(3),
            max_clients: 32,
        }
    }
}

/// Per-associated-client state.
#[derive(Debug, Clone)]
struct ClientState {
    aid: u16,
    power_save: bool,
    buffer: VecDeque<(SimTime, Frame)>,
}

/// Events produced by the AP MAC.
#[derive(Debug, Clone)]
pub enum ApEvent {
    /// Transmit this frame on the AP's channel. The beacon — the
    /// overwhelmingly most common frame an AP emits — is minted once per
    /// AP and re-sent as a refcount bump ([`AirFrame::Shared`]); unicast
    /// responses and data frames ride inline ([`AirFrame::Owned`]),
    /// skipping the `Arc` round trip since they have one recipient.
    Send(AirFrame),
    /// A client completed association.
    ClientAssociated(MacAddr),
    /// A client was removed (deauth or eviction).
    ClientGone(MacAddr),
    /// An uplink data packet from an associated client, to be handed to
    /// the AP's network side (DHCP server / NAT forwarding).
    DeliverUp {
        /// The transmitting client.
        from: MacAddr,
        /// The packet.
        packet: Ipv4Packet,
    },
}

/// The AP-side MAC state machine.
#[derive(Debug, Clone)]
pub struct ApMac {
    cfg: ApConfig,
    clients: FxHashMap<MacAddr, ClientState>,
    next_beacon: SimTime,
    next_aid: u16,
    /// The AP's beacon, minted once: its contents (SSID, channel,
    /// interval) never change, so every beacon interval re-sends this
    /// same shared frame instead of allocating a fresh SSID + frame.
    beacon: SharedFrame,
    /// Downlink frames dropped because a client wasn't associated,
    /// buffers overflowed, or frames aged out (observability for tests).
    pub drops: u64,
}

impl ApMac {
    /// Create an AP that starts beaconing at `first_beacon`.
    pub fn new(cfg: ApConfig, first_beacon: SimTime) -> ApMac {
        let beacon = Arc::new(Frame {
            src: cfg.bssid,
            dst: MacAddr::BROADCAST,
            bssid: cfg.bssid,
            body: FrameBody::Beacon {
                ssid: cfg.ssid.clone(),
                channel: cfg.channel,
                interval: cfg.beacon_interval,
            },
        });
        ApMac {
            cfg,
            clients: FxHashMap::default(),
            next_beacon: first_beacon,
            next_aid: 1,
            beacon,
            drops: 0,
        }
    }

    /// The AP's configuration.
    pub fn config(&self) -> &ApConfig {
        &self.cfg
    }

    /// Whether `mac` is currently associated.
    pub fn is_associated(&self, mac: MacAddr) -> bool {
        self.clients.contains_key(&mac)
    }

    /// Number of associated clients.
    pub fn client_count(&self) -> usize {
        self.clients.len()
    }

    /// Whether the given client is in power-save mode.
    pub fn is_asleep(&self, mac: MacAddr) -> bool {
        self.clients
            .get(&mac)
            .map(|c| c.power_save)
            .unwrap_or(false)
    }

    /// Number of frames currently buffered for `mac`.
    pub fn buffered_for(&self, mac: MacAddr) -> usize {
        self.clients.get(&mac).map(|c| c.buffer.len()).unwrap_or(0)
    }

    /// Next instant the AP needs a `poll` (the next beacon).
    pub fn next_wakeup(&self) -> SimTime {
        self.next_beacon
    }

    /// Re-seat the beacon phase on a freshly constructed AP.
    ///
    /// Used by the seed-rebase path (DESIGN.md §13): the beacon phase is
    /// drawn from the world seed at construction time, so re-deriving a
    /// world under a new seed must overwrite the already-baked first
    /// beacon instant. Only meaningful before the AP has beaconed;
    /// callers guard that (the world-level rebase requires an unstarted
    /// world).
    pub fn rebase_first_beacon(&mut self, first_beacon: SimTime) {
        self.next_beacon = first_beacon;
    }

    /// Fast-forward the beacon timer to `now` without emitting the
    /// missed beacons. Simulation worlds call this when an AP re-enters
    /// the client's radio horizon after a long gap — the beacons it sent
    /// meanwhile were unreceivable and need not be replayed.
    pub fn resync_beacons(&mut self, now: SimTime) {
        if self.next_beacon < now {
            let interval = self.cfg.beacon_interval.as_micros().max(1);
            let behind = now.saturating_since(self.next_beacon).as_micros();
            let steps = behind / interval + 1;
            self.next_beacon += self.cfg.beacon_interval * steps;
        }
    }

    /// Timer processing: emits beacons that are due.
    pub fn poll(&mut self, now: SimTime) -> Vec<ApEvent> {
        let mut out = Vec::new();
        self.poll_into(now, &mut out);
        out
    }

    /// Like [`ApMac::poll`], but appends to a caller-owned buffer. The
    /// world polls every active AP every beacon interval; reusing one
    /// scratch `Vec` across those calls keeps the hot loop allocation-free.
    pub fn poll_into(&mut self, now: SimTime, out: &mut Vec<ApEvent>) {
        while self.next_beacon <= now {
            out.push(ApEvent::Send(AirFrame::Shared(Arc::clone(&self.beacon))));
            self.next_beacon += self.cfg.beacon_interval;
        }
    }

    /// Process a received frame.
    pub fn on_frame(&mut self, now: SimTime, frame: &Frame) -> Vec<ApEvent> {
        let mut out = Vec::new();
        self.on_frame_into(now, frame, &mut out);
        out
    }

    /// Like [`ApMac::on_frame`], but appends to a caller-owned buffer.
    pub fn on_frame_into(&mut self, now: SimTime, frame: &Frame, out: &mut Vec<ApEvent>) {
        match &frame.body {
            FrameBody::ProbeRequest { ssid } => {
                let matches = ssid.as_ref().map(|s| *s == self.cfg.ssid).unwrap_or(true);
                if matches {
                    out.push(ApEvent::Send(AirFrame::owned(Frame {
                        src: self.cfg.bssid,
                        dst: frame.src,
                        bssid: self.cfg.bssid,
                        body: FrameBody::ProbeResponse {
                            ssid: self.cfg.ssid.clone(),
                            channel: self.cfg.channel,
                        },
                    })));
                }
            }
            FrameBody::AuthRequest if frame.dst == self.cfg.bssid => {
                out.push(ApEvent::Send(AirFrame::owned(Frame {
                    src: self.cfg.bssid,
                    dst: frame.src,
                    bssid: self.cfg.bssid,
                    body: FrameBody::AuthResponse { ok: true },
                })));
            }
            FrameBody::AssocRequest { ssid } => {
                if frame.dst != self.cfg.bssid || *ssid != self.cfg.ssid {
                    return;
                }
                let full = self.clients.len() >= self.cfg.max_clients
                    && !self.clients.contains_key(&frame.src);
                if full {
                    out.push(ApEvent::Send(AirFrame::owned(Frame {
                        src: self.cfg.bssid,
                        dst: frame.src,
                        bssid: self.cfg.bssid,
                        body: FrameBody::AssocResponse { ok: false, aid: 0 },
                    })));
                    return;
                }
                let aid = match self.clients.entry(frame.src) {
                    Entry::Occupied(e) => e.get().aid,
                    Entry::Vacant(e) => {
                        let aid = self.next_aid;
                        self.next_aid = self.next_aid.wrapping_add(1).max(1);
                        e.insert(ClientState {
                            aid,
                            power_save: false,
                            buffer: VecDeque::new(),
                        });
                        out.push(ApEvent::ClientAssociated(frame.src));
                        aid
                    }
                };
                out.push(ApEvent::Send(AirFrame::owned(Frame {
                    src: self.cfg.bssid,
                    dst: frame.src,
                    bssid: self.cfg.bssid,
                    body: FrameBody::AssocResponse { ok: true, aid },
                })));
            }
            FrameBody::Deauth { .. } if self.clients.remove(&frame.src).is_some() => {
                out.push(ApEvent::ClientGone(frame.src));
            }
            FrameBody::Null { power_save } => {
                if let Some(st) = self.clients.get_mut(&frame.src) {
                    st.power_save = *power_save;
                    if !*power_save {
                        self.flush_buffer_into(now, frame.src, out);
                    }
                }
            }
            FrameBody::PsPoll => {
                // Modelled as "release everything buffered" (like U-APSD);
                // per-frame PS-Poll pacing costs airtime we fold into the
                // flushed frames themselves.
                if let Some(st) = self.clients.get_mut(&frame.src) {
                    st.power_save = false;
                    self.flush_buffer_into(now, frame.src, out);
                }
            }
            FrameBody::Data { packet, .. }
                if self.clients.contains_key(&frame.src) && frame.dst == self.cfg.bssid =>
            {
                out.push(ApEvent::DeliverUp {
                    from: frame.src,
                    packet: packet.clone(),
                });
            }
            _ => {}
        }
    }

    /// Queue a downlink packet toward `dst`.
    ///
    /// * If `dst` is awake, the frame is returned for immediate
    ///   transmission.
    /// * If `dst` sleeps and `bufferable`, the frame is buffered until a
    ///   PSM wake/poll (subject to the buffer cap).
    /// * If `dst` sleeps and `!bufferable` (join traffic), it is dropped —
    ///   the fidelity choice described at module level.
    /// * If `dst` is not associated, it is dropped.
    pub fn enqueue_downlink(
        &mut self,
        now: SimTime,
        dst: MacAddr,
        packet: Ipv4Packet,
        bufferable: bool,
    ) -> Vec<ApEvent> {
        let mut out = Vec::new();
        self.enqueue_downlink_into(now, dst, packet, bufferable, &mut out);
        out
    }

    /// Like [`ApMac::enqueue_downlink`], but appends to a caller-owned
    /// buffer.
    pub fn enqueue_downlink_into(
        &mut self,
        now: SimTime,
        dst: MacAddr,
        packet: Ipv4Packet,
        bufferable: bool,
        out: &mut Vec<ApEvent>,
    ) {
        let Some(st) = self.clients.get_mut(&dst) else {
            self.drops += 1;
            return;
        };
        let frame = Frame {
            src: self.cfg.bssid,
            dst,
            bssid: self.cfg.bssid,
            body: FrameBody::Data {
                packet,
                more_data: false,
            },
        };
        if st.power_save {
            if !bufferable {
                self.drops += 1;
                return;
            }
            if st.buffer.len() >= self.cfg.psm_buffer_cap {
                st.buffer.pop_front();
                self.drops += 1;
            }
            st.buffer.push_back((now, frame));
        } else {
            out.push(ApEvent::Send(AirFrame::owned(frame)));
        }
    }

    /// Wipe all association state without notifying anyone — an AP
    /// power-cycle. Clients still believing themselves associated must
    /// re-join from scratch (their data frames will be ignored).
    pub fn reset_associations(&mut self) {
        self.clients.clear();
        self.next_aid = 1;
    }

    /// Remove a client (age-out by the AP's own logic).
    pub fn evict(&mut self, mac: MacAddr) -> Vec<ApEvent> {
        if self.clients.remove(&mac).is_some() {
            vec![
                ApEvent::Send(AirFrame::owned(Frame {
                    src: self.cfg.bssid,
                    dst: mac,
                    bssid: self.cfg.bssid,
                    body: FrameBody::Deauth { reason: 4 },
                })),
                ApEvent::ClientGone(mac),
            ]
        } else {
            Vec::new()
        }
    }

    fn flush_buffer_into(&mut self, now: SimTime, mac: MacAddr, out: &mut Vec<ApEvent>) {
        let Some(st) = self.clients.get_mut(&mac) else {
            return;
        };
        let max_age = self.cfg.psm_max_age;
        let total = st.buffer.len();
        out.reserve(total);
        let mut idx = 0;
        while let Some((queued_at, mut frame)) = st.buffer.pop_front() {
            idx += 1;
            if now.saturating_since(queued_at) > max_age {
                self.drops += 1;
                continue;
            }
            if let FrameBody::Data { more_data, .. } = &mut frame.body {
                *more_data = idx < total;
            }
            out.push(ApEvent::Send(AirFrame::owned(frame)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spider_wire::ip::L4;
    use spider_wire::{IcmpMessage, Ipv4Addr};

    fn ap() -> ApMac {
        ApMac::new(
            ApConfig::open(MacAddr::from_id(100), "net".into(), Channel::CH6),
            SimTime::ZERO,
        )
    }

    fn client_frame(body: FrameBody) -> Frame {
        Frame {
            src: MacAddr::from_id(1),
            dst: MacAddr::from_id(100),
            bssid: MacAddr::from_id(100),
            body,
        }
    }

    fn associate(ap: &mut ApMac, now: SimTime) {
        ap.on_frame(now, &client_frame(FrameBody::AuthRequest));
        ap.on_frame(
            now,
            &client_frame(FrameBody::AssocRequest { ssid: "net".into() }),
        );
        assert!(ap.is_associated(MacAddr::from_id(1)));
    }

    fn pkt() -> Ipv4Packet {
        Ipv4Packet {
            src: Ipv4Addr::new(10, 0, 0, 1),
            dst: Ipv4Addr::new(10, 0, 0, 2),
            payload: L4::Icmp(IcmpMessage::EchoReply { id: 1, seq: 1 }),
        }
    }

    #[test]
    fn beacons_fire_on_schedule() {
        let mut ap = ap();
        let ev = ap.poll(SimTime::ZERO);
        assert_eq!(ev.len(), 1);
        // Nothing more until the next interval.
        assert!(ap.poll(SimTime::from_millis(50)).is_empty());
        let ev = ap.poll(SimTime::from_micros(102_400));
        assert_eq!(ev.len(), 1);
        // A long gap emits all the missed beacons.
        let ev = ap.poll(SimTime::from_micros(102_400 * 4));
        assert_eq!(ev.len(), 3);
    }

    #[test]
    fn probe_responses() {
        let mut ap = ap();
        let ev = ap.on_frame(
            SimTime::ZERO,
            &client_frame(FrameBody::ProbeRequest { ssid: None }),
        );
        assert!(matches!(&ev[..], [ApEvent::Send(f)]
            if matches!(&f.body, FrameBody::ProbeResponse { .. })));
        // Non-matching directed probe is ignored.
        let ev = ap.on_frame(
            SimTime::ZERO,
            &client_frame(FrameBody::ProbeRequest {
                ssid: Some("other".into()),
            }),
        );
        assert!(ev.is_empty());
    }

    #[test]
    fn association_flow_and_aid_stability() {
        let mut ap = ap();
        let ev = ap.on_frame(SimTime::ZERO, &client_frame(FrameBody::AuthRequest));
        assert!(matches!(&ev[..], [ApEvent::Send(f)]
            if matches!(f.body, FrameBody::AuthResponse { ok: true })));
        let ev = ap.on_frame(
            SimTime::ZERO,
            &client_frame(FrameBody::AssocRequest { ssid: "net".into() }),
        );
        assert_eq!(ev.len(), 2); // ClientAssociated + Send
        let aid1 = ev
            .iter()
            .find_map(|e| match e {
                ApEvent::Send(f) => match f.body {
                    FrameBody::AssocResponse { aid, .. } => Some(aid),
                    _ => None,
                },
                _ => None,
            })
            .unwrap();
        // Re-association returns the same aid without a duplicate event.
        let ev = ap.on_frame(
            SimTime::from_millis(5),
            &client_frame(FrameBody::AssocRequest { ssid: "net".into() }),
        );
        assert_eq!(ev.len(), 1);
        let aid2 = match &ev[0] {
            ApEvent::Send(f) => match f.body {
                FrameBody::AssocResponse { aid, .. } => aid,
                _ => panic!(),
            },
            _ => panic!(),
        };
        assert_eq!(aid1, aid2);
    }

    #[test]
    fn wrong_ssid_assoc_is_ignored() {
        let mut ap = ap();
        let ev = ap.on_frame(
            SimTime::ZERO,
            &client_frame(FrameBody::AssocRequest {
                ssid: "wrong".into(),
            }),
        );
        assert!(ev.is_empty());
        assert_eq!(ap.client_count(), 0);
    }

    #[test]
    fn capacity_limit_rejects() {
        let mut cfg = ApConfig::open(MacAddr::from_id(100), "net".into(), Channel::CH6);
        cfg.max_clients = 1;
        let mut ap = ApMac::new(cfg, SimTime::ZERO);
        associate(&mut ap, SimTime::ZERO);
        let mut f = client_frame(FrameBody::AssocRequest { ssid: "net".into() });
        f.src = MacAddr::from_id(2);
        let ev = ap.on_frame(SimTime::ZERO, &f);
        assert!(matches!(&ev[..], [ApEvent::Send(fr)]
            if matches!(fr.body, FrameBody::AssocResponse { ok: false, .. })));
    }

    #[test]
    fn awake_client_gets_immediate_downlink() {
        let mut ap = ap();
        associate(&mut ap, SimTime::ZERO);
        let ev = ap.enqueue_downlink(SimTime::ZERO, MacAddr::from_id(1), pkt(), true);
        assert!(matches!(&ev[..], [ApEvent::Send(_)]));
    }

    #[test]
    fn psm_buffers_and_flushes_in_order() {
        let mut ap = ap();
        associate(&mut ap, SimTime::ZERO);
        let mac = MacAddr::from_id(1);
        // Client goes to sleep.
        ap.on_frame(
            SimTime::ZERO,
            &client_frame(FrameBody::Null { power_save: true }),
        );
        assert!(ap.is_asleep(mac));
        for _ in 0..3 {
            let ev = ap.enqueue_downlink(SimTime::from_millis(1), mac, pkt(), true);
            assert!(ev.is_empty());
        }
        assert_eq!(ap.buffered_for(mac), 3);
        // Wake: all three flushed, more_data set on all but the last.
        let ev = ap.on_frame(
            SimTime::from_millis(50),
            &client_frame(FrameBody::Null { power_save: false }),
        );
        assert_eq!(ev.len(), 3);
        let more: Vec<bool> = ev
            .iter()
            .map(|e| match e {
                ApEvent::Send(f) => match f.body {
                    FrameBody::Data { more_data, .. } => more_data,
                    _ => panic!(),
                },
                _ => panic!(),
            })
            .collect();
        assert_eq!(more, vec![true, true, false]);
        assert_eq!(ap.buffered_for(mac), 0);
    }

    #[test]
    fn ps_poll_also_flushes() {
        let mut ap = ap();
        associate(&mut ap, SimTime::ZERO);
        ap.on_frame(
            SimTime::ZERO,
            &client_frame(FrameBody::Null { power_save: true }),
        );
        ap.enqueue_downlink(SimTime::ZERO, MacAddr::from_id(1), pkt(), true);
        let ev = ap.on_frame(SimTime::from_millis(10), &client_frame(FrameBody::PsPoll));
        assert_eq!(ev.len(), 1);
        assert!(!ap.is_asleep(MacAddr::from_id(1)));
    }

    #[test]
    fn join_traffic_is_not_buffered_for_sleepers() {
        let mut ap = ap();
        associate(&mut ap, SimTime::ZERO);
        ap.on_frame(
            SimTime::ZERO,
            &client_frame(FrameBody::Null { power_save: true }),
        );
        let ev = ap.enqueue_downlink(SimTime::ZERO, MacAddr::from_id(1), pkt(), false);
        assert!(ev.is_empty());
        assert_eq!(ap.buffered_for(MacAddr::from_id(1)), 0);
        assert_eq!(ap.drops, 1);
    }

    #[test]
    fn buffer_cap_drops_oldest() {
        let mut cfg = ApConfig::open(MacAddr::from_id(100), "net".into(), Channel::CH6);
        cfg.psm_buffer_cap = 2;
        let mut ap = ApMac::new(cfg, SimTime::ZERO);
        associate(&mut ap, SimTime::ZERO);
        ap.on_frame(
            SimTime::ZERO,
            &client_frame(FrameBody::Null { power_save: true }),
        );
        for _ in 0..5 {
            ap.enqueue_downlink(SimTime::ZERO, MacAddr::from_id(1), pkt(), true);
        }
        assert_eq!(ap.buffered_for(MacAddr::from_id(1)), 2);
        assert_eq!(ap.drops, 3);
    }

    #[test]
    fn stale_buffered_frames_age_out_at_flush() {
        let mut ap = ap();
        associate(&mut ap, SimTime::ZERO);
        let mac = MacAddr::from_id(1);
        ap.on_frame(
            SimTime::ZERO,
            &client_frame(FrameBody::Null { power_save: true }),
        );
        ap.enqueue_downlink(SimTime::ZERO, mac, pkt(), true);
        ap.enqueue_downlink(SimTime::from_secs(4), mac, pkt(), true);
        // Flush at t=5s: first frame is 5s old (> 3s max age), second 1s.
        let ev = ap.on_frame(
            SimTime::from_secs(5),
            &client_frame(FrameBody::Null { power_save: false }),
        );
        assert_eq!(ev.len(), 1);
        assert_eq!(ap.drops, 1);
    }

    #[test]
    fn downlink_to_unassociated_client_drops() {
        let mut ap = ap();
        let ev = ap.enqueue_downlink(SimTime::ZERO, MacAddr::from_id(9), pkt(), true);
        assert!(ev.is_empty());
        assert_eq!(ap.drops, 1);
    }

    #[test]
    fn uplink_data_from_associated_client_delivers_up() {
        let mut ap = ap();
        associate(&mut ap, SimTime::ZERO);
        let ev = ap.on_frame(
            SimTime::ZERO,
            &client_frame(FrameBody::Data {
                packet: pkt(),
                more_data: false,
            }),
        );
        assert!(matches!(&ev[..], [ApEvent::DeliverUp { .. }]));
        // From an unknown client: dropped.
        let mut f = client_frame(FrameBody::Data {
            packet: pkt(),
            more_data: false,
        });
        f.src = MacAddr::from_id(66);
        assert!(ap.on_frame(SimTime::ZERO, &f).is_empty());
    }

    #[test]
    fn deauth_and_evict() {
        let mut ap = ap();
        associate(&mut ap, SimTime::ZERO);
        let ev = ap.on_frame(
            SimTime::ZERO,
            &client_frame(FrameBody::Deauth { reason: 3 }),
        );
        assert!(matches!(&ev[..], [ApEvent::ClientGone(_)]));
        assert_eq!(ap.client_count(), 0);
        // Evicting an unknown client is a no-op.
        assert!(ap.evict(MacAddr::from_id(1)).is_empty());
        associate(&mut ap, SimTime::from_secs(1));
        let ev = ap.evict(MacAddr::from_id(1));
        assert_eq!(ev.len(), 2);
    }
}

#[cfg(all(test, feature = "proptest-tests"))]
mod property_tests {
    use super::*;
    use proptest::prelude::*;
    use spider_wire::ip::L4;
    use spider_wire::{IcmpMessage, Ipv4Addr};

    proptest! {
        /// The PSM buffer never exceeds its cap, whatever the interleaving
        /// of sleeps, wakes and downlink traffic.
        #[test]
        fn psm_buffer_respects_cap(
            cap in 1usize..20,
            ops in prop::collection::vec((0u8..3, 1u64..100), 1..100),
        ) {
            let mut cfg = ApConfig::open(MacAddr::from_id(9), "p".into(), Channel::CH6);
            cfg.psm_buffer_cap = cap;
            let mut ap = ApMac::new(cfg, SimTime::MAX);
            let client = MacAddr::from_id(1);
            // Associate.
            ap.on_frame(SimTime::ZERO, &Frame {
                src: client,
                dst: MacAddr::from_id(9),
                bssid: MacAddr::from_id(9),
                body: FrameBody::AssocRequest { ssid: "p".into() },
            });
            let mut now = SimTime::ZERO;
            for (op, dt) in ops {
                now = now + SimDuration::from_millis(dt);
                match op {
                    0 | 1 => {
                        let ps = op == 0;
                        ap.on_frame(now, &Frame {
                            src: client,
                            dst: MacAddr::from_id(9),
                            bssid: MacAddr::from_id(9),
                            body: FrameBody::Null { power_save: ps },
                        });
                    }
                    _ => {
                        let pkt = Ipv4Packet {
                            src: Ipv4Addr::new(10, 0, 0, 1),
                            dst: Ipv4Addr::new(10, 0, 0, 2),
                            payload: L4::Icmp(IcmpMessage::EchoReply { id: 1, seq: 1 }),
                        };
                        ap.enqueue_downlink(now, client, pkt, true);
                    }
                }
                prop_assert!(ap.buffered_for(client) <= cap);
            }
        }
    }
}
