//! Join timing statistics.
//!
//! Every driver records the timings the paper's evaluation plots:
//! association delay (Fig. 5), DHCP lease delay (Fig. 6), full join
//! delay = association + DHCP + connectivity check (Figs. 14–15), and
//! the corresponding failure counts (Table 3).

use spider_simcore::{Cdf, SimDuration, SimTime};

/// One completed timing sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedSample {
    /// When the attempt completed.
    pub at: SimTime,
    /// How long it took.
    pub took: SimDuration,
}

/// Join timing log filled in by a driver as it operates.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct JoinLog {
    /// Successful link-layer associations.
    pub assoc: Vec<TimedSample>,
    /// Association attempts abandoned after retries ran out.
    pub assoc_failures: u64,
    /// Successful DHCP lease acquisitions (duration measured from the
    /// first DISCOVER/REQUEST to the ACK).
    pub dhcp: Vec<TimedSample>,
    /// DHCP attempts that timed out.
    pub dhcp_failures: u64,
    /// Full joins: association start to verified end-to-end connectivity.
    pub join: Vec<TimedSample>,
    /// Joins that never reached verified connectivity.
    pub join_failures: u64,
}

impl JoinLog {
    /// Create an empty log.
    pub fn new() -> JoinLog {
        JoinLog::default()
    }

    /// Record a successful association.
    pub fn record_assoc(&mut self, at: SimTime, took: SimDuration) {
        self.assoc.push(TimedSample { at, took });
    }

    /// Record a successful DHCP acquisition.
    pub fn record_dhcp(&mut self, at: SimTime, took: SimDuration) {
        self.dhcp.push(TimedSample { at, took });
    }

    /// Record a verified full join.
    pub fn record_join(&mut self, at: SimTime, took: SimDuration) {
        self.join.push(TimedSample { at, took });
    }

    /// Association durations in seconds as a CDF (Fig. 5's y-axis is the
    /// fraction of successful associations completing within x).
    pub fn assoc_cdf(&self) -> Cdf {
        Cdf::from_samples(self.assoc.iter().map(|s| s.took.as_secs_f64()).collect())
    }

    /// DHCP durations in seconds as a CDF (Fig. 6).
    pub fn dhcp_cdf(&self) -> Cdf {
        Cdf::from_samples(self.dhcp.iter().map(|s| s.took.as_secs_f64()).collect())
    }

    /// Full-join durations in seconds as a CDF (Figs. 14–15).
    pub fn join_cdf(&self) -> Cdf {
        Cdf::from_samples(self.join.iter().map(|s| s.took.as_secs_f64()).collect())
    }

    /// DHCP failure ratio: failures / (successes + failures), the
    /// quantity of Table 3. `None` when no attempts happened.
    pub fn dhcp_failure_ratio(&self) -> Option<f64> {
        let total = self.dhcp.len() as u64 + self.dhcp_failures;
        (total > 0).then(|| self.dhcp_failures as f64 / total as f64)
    }

    /// Association failure ratio.
    pub fn assoc_failure_ratio(&self) -> Option<f64> {
        let total = self.assoc.len() as u64 + self.assoc_failures;
        (total > 0).then(|| self.assoc_failures as f64 / total as f64)
    }

    /// Merge another log into this one (for multi-run aggregation).
    pub fn merge(&mut self, other: &JoinLog) {
        self.assoc.extend_from_slice(&other.assoc);
        self.assoc_failures += other.assoc_failures;
        self.dhcp.extend_from_slice(&other.dhcp);
        self.dhcp_failures += other.dhcp_failures;
        self.join.extend_from_slice(&other.join);
        self.join_failures += other.join_failures;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios() {
        let mut log = JoinLog::new();
        assert_eq!(log.dhcp_failure_ratio(), None);
        log.record_dhcp(SimTime::from_secs(1), SimDuration::from_millis(1_300));
        log.record_dhcp(SimTime::from_secs(2), SimDuration::from_millis(2_500));
        log.dhcp_failures = 2;
        assert_eq!(log.dhcp_failure_ratio(), Some(0.5));
        log.assoc_failures = 1;
        assert_eq!(log.assoc_failure_ratio(), Some(1.0));
    }

    #[test]
    fn cdfs_are_in_seconds() {
        let mut log = JoinLog::new();
        log.record_assoc(SimTime::from_secs(1), SimDuration::from_millis(200));
        log.record_assoc(SimTime::from_secs(2), SimDuration::from_millis(400));
        let mut cdf = log.assoc_cdf();
        assert_eq!(cdf.len(), 2);
        assert!((cdf.median() - 0.2).abs() < 1e-9);
    }

    #[test]
    fn merge_combines() {
        let mut a = JoinLog::new();
        a.record_join(SimTime::from_secs(1), SimDuration::from_secs(2));
        a.join_failures = 1;
        let mut b = JoinLog::new();
        b.record_join(SimTime::from_secs(5), SimDuration::from_secs(3));
        b.join_failures = 2;
        a.merge(&b);
        assert_eq!(a.join.len(), 2);
        assert_eq!(a.join_failures, 3);
    }
}
