//! 802.11 MAC behaviour for the Spider reproduction.
//!
//! Three pieces live here:
//!
//! * [`client`] — the per-interface association state machine
//!   (authenticate → associate, with per-message retry timers whose value
//!   is the paper's tunable "link-layer timeout"),
//! * [`ap`] — the AP side: beaconing, probe/auth/assoc responses, and
//!   the power-save (PSM) buffering that makes concurrent connections
//!   possible at all (a virtualised client parks an AP by claiming to
//!   sleep; the AP buffers its downlink frames until it returns, §2),
//! * [`driver`] — the `ClientSystem` trait through which the simulation
//!   world drives any client implementation: Spider, the stock driver,
//!   FatVAP-style and Cabernet-style baselines all implement it.
//!
//! [`stats::JoinLog`] records association/DHCP/join timings in the form
//! the paper's Figures 5, 6, 14 and 15 report.

#![forbid(unsafe_code)]

pub mod ap;
pub mod client;
pub mod driver;
pub mod stats;

pub use ap::{ApConfig, ApEvent, ApMac};
pub use client::{ApTarget, AssocState, ClientMacConfig, InterfaceMac, MacEvent};
pub use driver::{ClientObservation, ClientSystem, DriverAction, RxBuf, RxFrame};
pub use stats::JoinLog;
