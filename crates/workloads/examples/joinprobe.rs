use spider_core::{OperationMode, SpiderConfig, SpiderDriver};
use spider_simcore::SimDuration;
use spider_wire::Channel;
use spider_workloads::scenarios::{town_scenario, ScenarioParams};
use spider_workloads::World;

fn main() {
    let params = ScenarioParams {
        duration: SimDuration::from_secs(1800),
        seed: 1,
        ..Default::default()
    };
    let cfg = town_scenario(&params);
    let ch1_aps = cfg.deployment.on_channel(Channel::CH1).count();
    println!(
        "deployment: {} APs total, {} on ch1",
        cfg.deployment.len(),
        ch1_aps
    );
    let driver = SpiderDriver::new(SpiderConfig::for_mode(
        OperationMode::SingleChannelMultiAp(Channel::CH1),
        1,
    ));
    let (result, driver) = World::new(cfg, driver).run_with();
    println!("{result}");
    // per-AP attempts from the utility table
    let table = driver.utility_table();
    println!("table knows {} APs", table.len());
    let mut attempts: Vec<(u32, f64)> = Vec::new();
    for id in 0..200u64 {
        if let Some(rec) = table.get(spider_wire::MacAddr::from_id(0x00AA_0000 + id)) {
            if rec.channel == Channel::CH1 {
                attempts.push((rec.attempts, rec.utility));
            }
        }
    }
    println!("ch1 AP attempt counts: {:?}", attempts);
    println!(
        "lease cache: {} entries, {} hits, {} misses",
        driver.lease_cache().len(),
        driver.lease_cache().hits,
        driver.lease_cache().misses
    );
}
