use spider_baselines::{StockConfig, StockDriver};
use spider_core::{OperationMode, SpiderConfig, SpiderDriver};
use spider_simcore::SimDuration;
use spider_wire::Channel;
use spider_workloads::scenarios::{town_scenario, ScenarioParams};
use spider_workloads::World;
use std::time::Instant;

fn main() {
    let params = ScenarioParams {
        duration: SimDuration::from_secs(1800),
        seed: 1,
        ..Default::default()
    };
    let period = SimDuration::from_millis(600);
    let modes = [
        OperationMode::SingleChannelMultiAp(Channel::CH1),
        OperationMode::SingleChannelSingleAp(Channel::CH1),
        OperationMode::MultiChannelMultiAp { period },
        OperationMode::MultiChannelSingleAp { period },
    ];
    for mode in modes {
        let cfg = town_scenario(&params);
        let driver = SpiderDriver::new(SpiderConfig::for_mode(mode, 1));
        let t0 = Instant::now();
        let result = World::new(cfg, driver).run();
        println!(
            "{result}  [wall {:.1}s] to={} rx={}",
            t0.elapsed().as_secs_f64(),
            result.tcp_timeouts,
            result.tcp_retransmits
        );
        println!(
            "   encountered={} assoc={}ok/{}fail dhcp={}ok/{}fail joins={}ok/{}fail",
            result.aps_encountered,
            result.join_log.assoc.len(),
            result.join_log.assoc_failures,
            result.join_log.dhcp.len(),
            result.join_log.dhcp_failures,
            result.join_log.join.len(),
            result.join_log.join_failures
        );
    }
    for mk in [
        StockConfig::stock as fn(u64) -> StockConfig,
        StockConfig::quickwifi,
    ] {
        let cfg = town_scenario(&params);
        let t0 = Instant::now();
        let result = World::new(cfg, StockDriver::new(mk(1))).run();
        println!("{result}  [wall {:.1}s]", t0.elapsed().as_secs_f64());
    }
}
