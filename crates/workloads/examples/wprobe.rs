use spider_core::{OperationMode, SpiderConfig, SpiderDriver};
use spider_simcore::SimDuration;
use spider_wire::Channel;
use spider_workloads::scenarios::lab_scenario;
use spider_workloads::World;

fn main() {
    let cfg = lab_scenario(&[Channel::CH1], 250_000.0, SimDuration::from_secs(30), 42);
    let driver = SpiderDriver::new(SpiderConfig::for_mode(
        OperationMode::SingleChannelMultiAp(Channel::CH1),
        1,
    ));
    let world = World::new(cfg, driver);
    let mut result = world.run();
    println!("{result}");
    println!(
        "bytes={} avg={:.0}B/s conn={:.2}",
        result.bytes, result.avg_throughput_bps, result.connectivity
    );
    let rates = &mut result.instantaneous_bps;
    println!(
        "inst rates: n={} p10={:.0} p50={:.0} p90={:.0}",
        rates.len(),
        rates.quantile(0.1),
        rates.quantile(0.5),
        rates.quantile(0.9)
    );
    println!(
        "join took: {:?}",
        result
            .join_log
            .join
            .iter()
            .map(|s| s.took.as_secs_f64())
            .collect::<Vec<_>>()
    );
    println!(
        "assoc: {:?} dhcp: {:?}",
        result.join_log.assoc.len(),
        result.join_log.dhcp.len()
    );
    println!(
        "tcp timeouts={} retransmits={}",
        result.tcp_timeouts, result.tcp_retransmits
    );
}
// (run prints timeouts via Debug in main above)
