//! World assembly and evaluation workloads.
//!
//! * [`world`] — the discrete-event world: one mobile client (any
//!   [`ClientSystem`](spider_mac80211::ClientSystem)), a deployment of
//!   APs each with its own MAC, DHCP server, shaped backhaul and wired
//!   sink server, a shared per-channel medium, propagation and loss.
//! * [`metrics`] — per-run results: average throughput, connectivity
//!   fraction, connection/disruption CDFs, instantaneous bandwidth,
//!   join logs — the exact quantities the paper's tables and figures
//!   report.
//! * [`faults`] — fault injection: scripted or seeded per-AP outage
//!   episodes (blackout/reboot, zombie forwarding, DHCP silence and
//!   pool exhaustion, ICMP-filtered gateways, loss bursts) that the
//!   world consults on every interaction, plus the attribution
//!   counters reported in [`RunResult`].
//! * [`campaign`] — the chaos-campaign engine: randomized compound
//!   fault schedules, a declarative recovery-SLO table judging every
//!   run, and delta-debugging shrinking of failing schedules into
//!   minimal replayable reproducers.
//! * [`scenarios`] — builders for the paper's experimental setups: town
//!   and Boston drives, the indoor static testbed of §2.2.2, and the
//!   controlled two-AP lab of Fig. 10.
//! * [`meshusers`] — the §4.7 usability study substrate: a synthetic
//!   trace of user TCP flow durations and inter-connection gaps
//!   matching the downtown-mesh measurements.

#![forbid(unsafe_code)]

pub mod campaign;
pub mod capture;
pub mod faults;
pub mod meshusers;
pub mod metrics;
pub mod scenarios;
pub mod world;

pub use campaign::{
    calibrated_slo, chaos_plan, run_campaign, run_campaign_forked, run_matrix_cell,
    shrink_schedule, CampaignConfig, CampaignReport, ChaosProfile, CheckpointCache, Envelope,
    ForkEdge, ForkStats, MatrixCell, MatrixReport, MinimizedRepro, ShrinkOutcome, SloMargins,
    SloMetric, SloRule, SloTable, SloViolation, TrialRecord,
};
pub use capture::{read_capture, CaptureRecord, CaptureWriter, Direction};
pub use faults::{FaultEpisode, FaultIndex, FaultKind, FaultPlan, FaultProfile, FaultStats};
pub use metrics::RunResult;
pub use scenarios::{lab_scenario, town_scenario, ScenarioParams};
pub use world::{World, WorldConfig};
