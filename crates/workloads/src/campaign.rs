//! Chaos-campaign engine: generated fault schedules, recovery SLOs,
//! and failing-schedule shrinking.
//!
//! The scripted chaos tests only verify recovery against failures
//! someone thought to write down, and [`FaultPlan::seeded`] draws each
//! fault class independently per AP — it structurally cannot produce
//! the *compound* failures ("Why It Takes So Long to Connect to a WiFi
//! Access Point" finds the long tail of join failures there): an ICMP
//! blackhole opening mid-loss-burst, a blackout landing during a DHCP
//! REQUEST, a zombie window inside an exhaustion episode. This module
//! imagines those scenarios on purpose and at scale:
//!
//! 1. [`chaos_plan`] generates a randomized [`FaultPlan`] from a
//!    [`ChaosProfile`]: episodes of every [`FaultKind`] (including
//!    *windowed* ICMP blackholes, which the seeded generator never
//!    emits), deliberately overlapping, with explicit compound pairs
//!    layered on the same AP and window.
//! 2. An [`SloTable`] judges each run: declarative per-fault-class
//!    detect/recover budgets (the §3.2.2 3.0 s ping budget), DHCP
//!    timing budgets (§2.2.1/Table 3), and floor metrics (minimum
//!    connectivity, minimum payload).
//! 3. On a violation, [`shrink_schedule`] delta-debugs the failing
//!    schedule to a minimal reproducer — drop episode chunks
//!    (ddmin-style), then narrow the surviving windows — re-checking
//!    the violation after every candidate edit. The result serializes
//!    via [`MinimizedRepro::to_json`] into an artifact that replays
//!    bit-identically.
//!
//! [`run_campaign`] drives the whole loop over the fault-tolerant
//! sweep runner ([`spider_simcore::try_sweep_with`]): a trial that
//! panics the simulator is quarantined as a [`JobFailure`] in the
//! report instead of sinking the batch, which matters precisely
//! because campaigns run inputs nobody has run before.
//!
//! Everything is a pure function of the campaign seed: trial schedules
//! derive from per-trial RNG streams, the sweep merges results in
//! trial order, and shrinking walks candidates deterministically — the
//! same campaign config yields byte-identical reports and artifacts at
//! any worker count.

use crate::faults::{FaultEpisode, FaultKind, FaultPlan};
use crate::metrics::RunResult;
use crate::world::World;
use spider_mac80211::ClientSystem;
use spider_simcore::{
    grow_tree_with, try_sweep_with, worker_count, JobFailure, Json, SimDuration, SimRng, SimTime,
    SweepOptions,
};

/// Knobs for randomized chaos-schedule generation.
///
/// Unlike [`crate::faults::FaultProfile`] (a *realism* model: per-class
/// Poisson incidence calibrated to "a day in a deployment"), this is an
/// *adversity* model: how many episodes, how long, how often they
/// compound. The generator makes no attempt at plausibility — its job
/// is coverage of the failure-combination space.
#[derive(Debug, Clone)]
pub struct ChaosProfile {
    /// Inclusive bounds on the number of base episodes per trial.
    pub episodes: (usize, usize),
    /// Episode window length bounds in seconds (uniform).
    pub window_secs: (f64, f64),
    /// Probability that a base episode gains a *compound partner*: a
    /// second episode of a different class on the same target with an
    /// overlapping window.
    pub compound_prob: f64,
    /// Probability that an episode is area-wide (`ap: None`) rather
    /// than pinned to one AP.
    pub global_prob: f64,
    /// Extra-loss bounds for generated [`FaultKind::LossBurst`]s.
    pub loss_extra: (f64, f64),
    /// Relative draw weights per class, in [`CHAOS_KINDS`] order:
    /// blackout, zombie, dhcp-silence, dhcp-exhausted, icmp-blackhole,
    /// loss-burst, arp-poison, captive-portal, asymmetric-loss.
    ///
    /// `pick_weighted` sums the slice and walks it against one uniform
    /// draw, so *trailing zero* weights change neither the total nor
    /// the draw sequence: profiles that zero the adversarial tail
    /// generate byte-identical plans to the six-class generator, which
    /// is what keeps every recorded corpus artifact valid.
    pub kind_weights: [f64; 9],
    /// Fraction window of the available start range episodes may begin
    /// in, as `(lo, hi)` in `[0, 1]`. `(0.0, 1.0)` is the whole drive;
    /// `(0.5, 1.0)` back-loads every episode into the second half,
    /// which is the regime where the checkpoint prefix-tree
    /// (DESIGN.md §13) pays most — long shared fault-free prefixes.
    pub start_frac: (f64, f64),
}

/// Class order behind [`ChaosProfile::kind_weights`].
pub const CHAOS_KINDS: [&str; 9] = [
    "blackout",
    "zombie",
    "dhcp-silence",
    "dhcp-exhausted",
    "icmp-blackhole",
    "loss-burst",
    "arp-poison",
    "captive-portal",
    "asymmetric-loss",
];

impl ChaosProfile {
    /// The standard campaign profile: a handful of episodes per trial,
    /// windows long enough to straddle joins, one in three episodes
    /// compounded.
    pub fn standard() -> ChaosProfile {
        ChaosProfile {
            episodes: (3, 10),
            window_secs: (5.0, 60.0),
            compound_prob: 0.35,
            global_prob: 0.1,
            loss_extra: (0.1, 0.6),
            // Adversarial tail zeroed: the standard profile's plans (and
            // so every recorded corpus artifact) predate those classes.
            kind_weights: [1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 0.0, 0.0, 0.0],
            start_frac: (0.0, 1.0),
        }
    }

    /// A denser, nastier profile: more episodes, longer windows, most
    /// of them compounded. For hunting, not for CI smoke.
    pub fn aggressive() -> ChaosProfile {
        ChaosProfile {
            episodes: (8, 24),
            window_secs: (10.0, 120.0),
            compound_prob: 0.6,
            global_prob: 0.2,
            loss_extra: (0.2, 0.8),
            kind_weights: [1.0, 1.5, 1.0, 1.0, 1.5, 1.5, 0.0, 0.0, 0.0],
            start_frac: (0.0, 1.0),
        }
    }

    /// [`ChaosProfile::standard`] with the adversarial classes armed:
    /// ARP poison, captive portals, and directional loss drawn at full
    /// weight alongside the original six. New artifacts and the
    /// campaign matrix use this; the legacy profiles keep the tail at
    /// zero so their recorded plans never shift.
    pub fn adversarial() -> ChaosProfile {
        ChaosProfile {
            kind_weights: [1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0],
            ..ChaosProfile::standard()
        }
    }

    /// [`ChaosProfile::standard`] with every episode back-loaded into
    /// the tail `1 - frac` of the drive: the long shared fault-free
    /// prefix makes this the showcase regime for cross-trial
    /// checkpoint sharing (the `prefix_tree` section of
    /// `BENCH_world.json` runs it).
    pub fn back_loaded(frac: f64) -> ChaosProfile {
        assert!(
            (0.0..1.0).contains(&frac),
            "back_loaded wants frac in [0, 1)"
        );
        ChaosProfile {
            start_frac: (frac, 1.0),
            ..ChaosProfile::standard()
        }
    }
}

/// Draw one fault kind according to the profile's weights.
fn draw_kind(rng: &mut SimRng, profile: &ChaosProfile) -> FaultKind {
    match rng.pick_weighted(&profile.kind_weights) {
        0 => FaultKind::Blackout,
        1 => FaultKind::Zombie,
        2 => FaultKind::DhcpSilence,
        3 => FaultKind::DhcpExhausted,
        4 => FaultKind::IcmpBlackhole,
        5 => FaultKind::LossBurst {
            extra: rng.uniform_in(profile.loss_extra.0, profile.loss_extra.1),
        },
        6 => FaultKind::ArpPoison,
        7 => FaultKind::CaptivePortal,
        // Directional loss reuses the burst's extra bounds per leg; the
        // two draws are ordered up-then-down.
        _ => FaultKind::AsymmetricLoss {
            up: rng.uniform_in(profile.loss_extra.0, profile.loss_extra.1),
            down: rng.uniform_in(profile.loss_extra.0, profile.loss_extra.1),
        },
    }
}

/// Generate a randomized chaos schedule: a pure function of
/// `(seed, num_aps, duration, profile)`.
///
/// Two deliberate differences from [`FaultPlan::seeded`]: episodes of
/// *different* classes freely overlap on the same AP (compound
/// failures), and [`FaultKind::IcmpBlackhole`] appears as a windowed
/// episode (a gateway that *starts* filtering mid-session) instead of
/// a whole-run property.
pub fn chaos_plan(
    seed: u64,
    num_aps: usize,
    duration: SimDuration,
    profile: &ChaosProfile,
) -> FaultPlan {
    assert!(num_aps > 0, "chaos plans need at least one AP to target");
    let mut rng = SimRng::new(seed).stream("chaos-plan");
    let horizon = duration.as_secs_f64();
    let (lo, hi) = profile.episodes;
    let n = rng.uniform_u64(lo as u64, hi as u64 + 1) as usize;
    let mut episodes = Vec::with_capacity(n * 2);
    for _ in 0..n {
        let ap = if rng.chance(profile.global_prob) {
            None
        } else {
            Some(rng.index(num_aps))
        };
        let kind = draw_kind(&mut rng, profile);
        let dur = rng.uniform_in(profile.window_secs.0, profile.window_secs.1);
        let avail = (horizon - dur).max(0.0);
        // With the default (0.0, 1.0) window this is uniform_in(0, avail)
        // exactly — same arguments, same draw — so existing seeded plans
        // stay bit-identical.
        let start = rng.uniform_in(profile.start_frac.0 * avail, profile.start_frac.1 * avail);
        let end = (start + dur).min(horizon);
        let base = FaultEpisode {
            ap,
            kind,
            start: SimTime::ZERO + SimDuration::from_secs_f64(start),
            end: SimTime::ZERO + SimDuration::from_secs_f64(end),
        };
        episodes.push(base);
        if rng.chance(profile.compound_prob) {
            // A partner of a different class, overlapping the base
            // window on the same target: this is where the interesting
            // combinations come from (ICMP blackhole + loss burst,
            // blackout inside a DHCP-silence window, ...).
            let partner_kind = loop {
                let k = draw_kind(&mut rng, profile);
                if k.label() != kind.label() {
                    break k;
                }
            };
            let p_start = rng.uniform_in(start, end.max(start + 1e-6));
            let p_dur = rng.uniform_in(profile.window_secs.0, profile.window_secs.1);
            let p_end = (p_start + p_dur).min(horizon);
            episodes.push(FaultEpisode {
                ap,
                kind: partner_kind,
                start: SimTime::ZERO + SimDuration::from_secs_f64(p_start),
                end: SimTime::ZERO + SimDuration::from_secs_f64(p_end),
            });
        }
    }
    FaultPlan { episodes }
}

/// One judged quantity of a run. Budgets are `f64`s in the metric's
/// natural unit (seconds, fraction, bytes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SloMetric {
    /// Worst ping-monitor detection latency for one data-fault class
    /// (`"blackout"`, `"zombie"`, `"arp-poison"`, `"captive-portal"`,
    /// `"asymmetric-loss"`), seconds. No detections of that class →
    /// nothing to judge.
    MaxDetectS(&'static str),
    /// Worst fault-coincident outage-to-recovery latency, seconds.
    MaxRecoverS,
    /// Floor on the run's connectivity fraction.
    MinConnectivity,
    /// Floor on total delivered payload bytes.
    MinBytes,
    /// Ceiling on the 90th-percentile DHCP acquisition time, seconds
    /// (nearest-rank; no successful acquisitions → nothing to judge).
    MaxDhcpP90S,
}

impl SloMetric {
    /// Stable row key for reports and artifacts.
    pub fn label(&self) -> String {
        match self {
            SloMetric::MaxDetectS(class) => format!("detect.{class}.max_s"),
            SloMetric::MaxRecoverS => "recover.max_s".into(),
            SloMetric::MinConnectivity => "connectivity.min".into(),
            SloMetric::MinBytes => "bytes.min".into(),
            SloMetric::MaxDhcpP90S => "dhcp.p90.max_s".into(),
        }
    }

    /// Parse a [`label`](SloMetric::label) back into the metric.
    /// Detection classes resolve against [`CHAOS_KINDS`], so an
    /// artifact can only name classes the generator can produce.
    pub fn from_label(label: &str) -> Option<SloMetric> {
        match label {
            "recover.max_s" => return Some(SloMetric::MaxRecoverS),
            "connectivity.min" => return Some(SloMetric::MinConnectivity),
            "bytes.min" => return Some(SloMetric::MinBytes),
            "dhcp.p90.max_s" => return Some(SloMetric::MaxDhcpP90S),
            _ => {}
        }
        let class = label.strip_prefix("detect.")?.strip_suffix(".max_s")?;
        CHAOS_KINDS
            .iter()
            .find(|k| **k == class)
            .map(|k| SloMetric::MaxDetectS(k))
    }

    /// Measure this metric on a run. `None` when the run produced no
    /// samples to judge (e.g. no detections of the class).
    pub fn measure(&self, r: &RunResult) -> Option<f64> {
        match self {
            SloMetric::MaxDetectS(class) => r.faults.detect_times_for(class).reduce(f64::max),
            SloMetric::MaxRecoverS => r.faults.max_recover_s(),
            SloMetric::MinConnectivity => Some(r.connectivity),
            SloMetric::MinBytes => Some(r.bytes as f64),
            SloMetric::MaxDhcpP90S => {
                if r.join_log.dhcp.is_empty() {
                    return None;
                }
                let mut times: Vec<f64> = r
                    .join_log
                    .dhcp
                    .iter()
                    .map(|s| s.took.as_secs_f64())
                    .collect();
                times.sort_by(|a, b| a.total_cmp(b));
                // Nearest-rank p90, consistent with `Cdf::quantile`.
                let rank = ((0.9 * times.len() as f64).ceil() as usize).max(1) - 1;
                Some(times[rank.min(times.len() - 1)])
            }
        }
    }

    /// Does `measured` break `budget` for this metric? (`Max*` rules
    /// violate above the budget, `Min*` rules below.)
    pub fn violates(&self, measured: f64, budget: f64) -> bool {
        match self {
            SloMetric::MinConnectivity | SloMetric::MinBytes => measured < budget,
            _ => measured > budget,
        }
    }
}

/// One row of the SLO table: a metric and its budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloRule {
    /// What is judged.
    pub metric: SloMetric,
    /// The budget in the metric's unit.
    pub budget: f64,
}

/// A broken rule, with what was measured.
#[derive(Debug, Clone, PartialEq)]
pub struct SloViolation {
    /// The rule that fired.
    pub rule: SloRule,
    /// The measured value that broke it.
    pub measured: f64,
}

impl std::fmt::Display for SloViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: measured {:.3} vs budget {:.3}",
            self.rule.metric.label(),
            self.measured,
            self.rule.budget
        )
    }
}

impl SloViolation {
    /// Artifact form.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("rule", Json::str(self.rule.metric.label())),
            ("budget", Json::Num(self.rule.budget)),
            ("measured", Json::Num(self.measured)),
        ])
    }

    /// Parse the artifact form back. The measured value round-trips
    /// exactly (the JSON layer prints floats losslessly), so a replay
    /// can assert bit-equal re-measurement.
    pub fn from_json(v: &Json) -> Option<SloViolation> {
        Some(SloViolation {
            rule: SloRule {
                metric: SloMetric::from_label(v.get("rule")?.as_str()?)?,
                budget: v.get("budget")?.as_f64()?,
            },
            measured: v.get("measured")?.as_f64()?,
        })
    }
}

/// The declarative recovery-SLO table a campaign judges every run
/// against.
#[derive(Debug, Clone, PartialEq)]
pub struct SloTable {
    /// All rules; order is report order.
    pub rules: Vec<SloRule>,
}

impl SloTable {
    /// The paper-derived budgets (DESIGN.md §12):
    ///
    /// * detect ≤ 3.05 s per data-fault class — §3.2.2's 30 consecutive
    ///   losses at 10 pings/s is a 3.0 s budget; +50 ms absorbs the
    ///   ping-tick phase,
    /// * recover ≤ 45 s — re-scan + backoff + re-join against a
    ///   *different* AP while driving,
    /// * DHCP p90 ≤ 10 s — the §2.2.1 client's retry ladder
    ///   (1/2/4 s timers) exhausts near 10 s; Table 3's failure tail
    ///   sits beyond it,
    /// * at least one delivered byte — a run that moves nothing through
    ///   a *survivable* storm is a recovery failure by definition.
    pub fn paper_default() -> SloTable {
        SloTable {
            rules: vec![
                SloRule {
                    metric: SloMetric::MaxDetectS("blackout"),
                    budget: 3.05,
                },
                SloRule {
                    metric: SloMetric::MaxDetectS("zombie"),
                    budget: 3.05,
                },
                SloRule {
                    metric: SloMetric::MaxRecoverS,
                    budget: 45.0,
                },
                SloRule {
                    metric: SloMetric::MaxDhcpP90S,
                    budget: 10.0,
                },
                SloRule {
                    metric: SloMetric::MinBytes,
                    budget: 1.0,
                },
            ],
        }
    }

    /// Judge one run: every broken rule, in table order.
    pub fn evaluate(&self, r: &RunResult) -> Vec<SloViolation> {
        self.rules
            .iter()
            .filter_map(|rule| {
                let measured = rule.metric.measure(r)?;
                rule.metric
                    .violates(measured, rule.budget)
                    .then_some(SloViolation {
                        rule: *rule,
                        measured,
                    })
            })
            .collect()
    }

    /// Artifact form of the whole table.
    pub fn to_json(&self) -> Json {
        Json::arr(self.rules.iter().map(|r| {
            Json::obj([
                ("rule", Json::str(r.metric.label())),
                ("budget", Json::Num(r.budget)),
            ])
        }))
    }
}

/// Minimum episode window the shrinker will narrow down to (µs). Below
/// half a second a window stops interacting with any protocol timer in
/// the stack, so further narrowing only burns evaluations.
const MIN_WINDOW_US: u64 = 500_000;

/// The result of shrinking one failing schedule.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome {
    /// The minimized plan (still violating, by construction).
    pub plan: FaultPlan,
    /// Candidate evaluations spent. Each evaluation *judges* a full
    /// world run; since PR 7 the forked runner produces that run by
    /// resuming a checkpoint shared with the reference schedule rather
    /// than simulating from `t = 0` (see [`CheckpointCache`]), so an
    /// evaluation no longer costs a full run's worth of events.
    pub evals: usize,
}

/// Delta-debug a failing schedule down to a minimal reproducer.
///
/// `still_fails` must return `true` when a candidate plan still
/// violates the SLO under the *same* world config — the input plan is
/// required to fail (debug-asserted via the first phase's baseline).
/// Two phases, both greedy and deterministic:
///
/// 1. **Episode ddmin**: try dropping chunks at doubling granularity
///    (halves, quarters, ... single episodes); adopt any candidate
///    that still fails. Chunks are tried **latest-starting first**:
///    a candidate that only drops late episodes diverges from the
///    reference schedule late, so the checkpoint-forked runner
///    ([`CheckpointCache`]) resumes a long shared prefix instead of
///    re-simulating it. Candidates remain order-preserving subsets of
///    the input plan — episodes are never reordered, so order-sensitive
///    fault compositions (overlapping loss bursts) are untouched.
/// 2. **Window narrowing**: for each surviving episode — again
///    latest-starting first — repeatedly halve the window from the
///    end, then from the start, adopting while the violation survives
///    (down to [`MIN_WINDOW_US`]).
///
/// `budget` caps total `still_fails` evaluations; the shrinker returns
/// its best-so-far when spent. The candidate walk is a pure function
/// of the input plan and the check outcomes, so a deterministic
/// `still_fails` yields a deterministic reproducer — and the cold and
/// forked campaign runners, which differ only in how `still_fails`
/// produces the run, walk the identical candidate sequence.
pub fn shrink_schedule(
    plan: &FaultPlan,
    budget: usize,
    mut still_fails: impl FnMut(&FaultPlan) -> bool,
) -> ShrinkOutcome {
    let mut current = plan.clone();
    let mut evals = 0usize;
    let mut check = |p: &FaultPlan, evals: &mut usize| {
        *evals += 1;
        still_fails(p)
    };

    // Phase 1: ddmin over episodes. Within a round the chunk windows
    // are fixed against the round-entry schedule and composed through
    // an `alive` mask, so they can be *tried* in any order; trying the
    // latest-starting chunks first means most candidates differ from
    // the reference only late in simulated time — exactly the shape
    // the checkpoint cache resumes cheaply.
    let mut granularity = 2usize;
    while current.episodes.len() >= 2 && evals < budget {
        let len = current.episodes.len();
        let granularity_now = granularity.min(len);
        let chunk = len.div_ceil(granularity_now);
        let mut windows: Vec<(usize, usize)> = (0..len)
            .step_by(chunk)
            .map(|s| (s, (s + chunk).min(len)))
            .collect();
        windows.sort_by_key(|&(s, e)| {
            let earliest = current.episodes[s..e]
                .iter()
                .map(|ep| ep.start)
                .min()
                .expect("chunk windows are non-empty");
            std::cmp::Reverse(earliest)
        });
        let mut progressed = false;
        let mut alive = vec![true; len];
        for (s, e) in windows {
            if evals >= budget {
                break;
            }
            let mut candidate_alive = alive.clone();
            candidate_alive[s..e].fill(false);
            let keep: Vec<FaultEpisode> = current
                .episodes
                .iter()
                .zip(&candidate_alive)
                .filter(|(_, a)| **a)
                .map(|(ep, _)| *ep)
                .collect();
            if keep.is_empty() {
                continue;
            }
            let candidate = FaultPlan::scripted(keep);
            if check(&candidate, &mut evals) {
                alive = candidate_alive;
                progressed = true;
            }
        }
        let mut it = alive.iter();
        current
            .episodes
            .retain(|_| *it.next().expect("mask covers every episode"));
        if progressed {
            granularity = 2;
        } else if granularity_now >= len {
            break;
        } else {
            granularity = (granularity * 2).min(len);
        }
    }

    // Phase 2: narrow each surviving episode's window, latest first so
    // successive references keep sharing their early prefix.
    let mut order: Vec<usize> = (0..current.episodes.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(current.episodes[i].start));
    for i in order {
        // Halve from the end, then from the start.
        for from_end in [true, false] {
            loop {
                if evals >= budget {
                    return ShrinkOutcome {
                        plan: current,
                        evals,
                    };
                }
                let e = current.episodes[i];
                let width = e.end.as_micros().saturating_sub(e.start.as_micros());
                if width <= MIN_WINDOW_US {
                    break;
                }
                let mid = e.start.as_micros() + width / 2;
                let mut candidate = current.clone();
                if from_end {
                    candidate.episodes[i].end = SimTime::from_micros(mid);
                } else {
                    candidate.episodes[i].start = SimTime::from_micros(mid);
                }
                if check(&candidate, &mut evals) {
                    current = candidate;
                } else {
                    break;
                }
            }
        }
    }

    ShrinkOutcome {
        plan: current,
        evals,
    }
}

/// Configuration for one chaos campaign.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Number of randomized trials.
    pub trials: usize,
    /// Campaign root seed; trial schedules derive from per-trial
    /// streams of it.
    pub seed: u64,
    /// AP count of the world the trials run in (schedule targets).
    pub num_aps: usize,
    /// Simulated duration of the world the trials run in.
    pub duration: SimDuration,
    /// Schedule-generation knobs.
    pub profile: ChaosProfile,
    /// The recovery SLOs every trial is judged against.
    pub slo: SloTable,
    /// Max candidate evaluations the shrinker may spend per failing
    /// trial. Each evaluation judges a full world run; the forked
    /// runner resumes it from a shared checkpoint instead of
    /// simulating from `t = 0`.
    pub shrink_budget: usize,
    /// Max failing trials to shrink (the rest are still reported).
    pub max_shrinks: usize,
    /// Sweep workers; `0` = [`spider_simcore::worker_count`].
    pub workers: usize,
    /// Optional per-trial wall-clock watchdog in milliseconds (hung
    /// trials get flagged in the report; see
    /// [`spider_simcore::SweepReport::hung`]).
    pub watchdog_ms: Option<u64>,
}

impl CampaignConfig {
    /// A small smoke campaign over a world with `num_aps` APs.
    pub fn smoke(seed: u64, num_aps: usize, duration: SimDuration) -> CampaignConfig {
        CampaignConfig {
            trials: 8,
            seed,
            num_aps,
            duration,
            profile: ChaosProfile::standard(),
            slo: SloTable::paper_default(),
            shrink_budget: 120,
            max_shrinks: 4,
            workers: 0,
            watchdog_ms: None,
        }
    }
}

/// One trial's schedule, as handed to the sweep runner.
#[derive(Debug, Clone)]
struct TrialJob {
    trial: usize,
    plan_seed: u64,
    plan: FaultPlan,
}

/// The judged outcome of one completed trial.
#[derive(Debug, Clone)]
pub struct TrialRecord {
    /// Trial index within the campaign.
    pub trial: usize,
    /// The derived seed its schedule was generated from.
    pub plan_seed: u64,
    /// Episodes in the generated schedule.
    pub episodes: usize,
    /// Broken SLO rules (empty = the trial passed).
    pub violations: Vec<SloViolation>,
    /// Payload bytes the run still delivered.
    pub bytes: u64,
    /// Connectivity fraction of the run.
    pub connectivity: f64,
}

impl TrialRecord {
    /// Report form.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("trial", Json::UInt(self.trial as u64)),
            ("plan_seed", Json::UInt(self.plan_seed)),
            ("episodes", Json::UInt(self.episodes as u64)),
            (
                "violations",
                Json::arr(self.violations.iter().map(SloViolation::to_json)),
            ),
            ("bytes", Json::UInt(self.bytes)),
            ("connectivity", Json::Num(self.connectivity)),
        ])
    }
}

/// A minimized failing schedule, ready to serialize as a replayable
/// artifact.
#[derive(Debug, Clone)]
pub struct MinimizedRepro {
    /// Which trial produced it.
    pub trial: usize,
    /// The trial's schedule seed (provenance; the artifact's plan is
    /// what replays, not the seed).
    pub plan_seed: u64,
    /// Episode count of the original failing schedule.
    pub original_episodes: usize,
    /// The minimized schedule.
    pub plan: FaultPlan,
    /// Violations measured on the minimized schedule's replay.
    pub violations: Vec<SloViolation>,
    /// World runs the shrinker spent.
    pub evals: usize,
}

impl MinimizedRepro {
    /// Serialize the artifact. Contains everything a replay needs: the
    /// minimized plan (exact microsecond windows, exact float
    /// parameters) plus provenance and the violations it reproduces.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("artifact", Json::str("spider-chaos-repro")),
            ("trial", Json::UInt(self.trial as u64)),
            ("plan_seed", Json::UInt(self.plan_seed)),
            (
                "original_episodes",
                Json::UInt(self.original_episodes as u64),
            ),
            ("shrink_evals", Json::UInt(self.evals as u64)),
            (
                "violations",
                Json::arr(self.violations.iter().map(SloViolation::to_json)),
            ),
            ("plan", self.plan.to_json()),
        ])
    }

    /// Parse an artifact back, including the recorded violations —
    /// replay re-measures them and asserts exact agreement rather than
    /// trusting them (the corpus test in `tests/chaos_corpus.rs`).
    pub fn from_json(v: &Json) -> Option<MinimizedRepro> {
        if v.get("artifact")?.as_str()? != "spider-chaos-repro" {
            return None;
        }
        Some(MinimizedRepro {
            trial: v.get("trial")?.as_u64()? as usize,
            plan_seed: v.get("plan_seed")?.as_u64()?,
            original_episodes: v.get("original_episodes")?.as_u64()? as usize,
            plan: FaultPlan::from_json(v.get("plan")?)?,
            violations: v
                .get("violations")?
                .as_arr()?
                .iter()
                .map(SloViolation::from_json)
                .collect::<Option<Vec<_>>>()?,
            evals: v.get("shrink_evals")?.as_u64()? as usize,
        })
    }
}

/// The complete outcome of a campaign.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Campaign seed (provenance).
    pub seed: u64,
    /// Trials attempted.
    pub trials: usize,
    /// Judged outcomes of completed trials, in trial order.
    pub outcomes: Vec<TrialRecord>,
    /// Trials whose simulator run panicked, quarantined by the sweep.
    pub job_failures: Vec<JobFailure>,
    /// Trial indices the watchdog flagged as hung (diagnostic).
    pub hung: Vec<usize>,
    /// Minimized reproducers for (up to `max_shrinks`) failing trials.
    pub minimized: Vec<MinimizedRepro>,
}

impl CampaignReport {
    /// Trials that completed and broke at least one SLO.
    pub fn violating_trials(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| !o.violations.is_empty())
            .count()
    }

    /// A campaign is clean when every trial completed and passed.
    pub fn is_clean(&self) -> bool {
        self.violating_trials() == 0 && self.job_failures.is_empty()
    }

    /// Report form (sans the full minimized plans — those serialize as
    /// their own artifacts). Deterministic for a deterministic runner
    /// at any worker count; the watchdog's `hung` list is the one
    /// timing-dependent field and is reported separately by callers
    /// that care.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("seed", Json::UInt(self.seed)),
            ("trials", Json::UInt(self.trials as u64)),
            (
                "violating_trials",
                Json::UInt(self.violating_trials() as u64),
            ),
            (
                "outcomes",
                Json::arr(self.outcomes.iter().map(TrialRecord::to_json)),
            ),
            (
                "job_failures",
                Json::arr(self.job_failures.iter().map(|f| {
                    Json::obj([
                        ("trial", Json::UInt(f.index as u64)),
                        ("fingerprint", Json::str(f.fingerprint.clone())),
                        ("message", Json::str(f.message.clone())),
                    ])
                })),
            ),
            (
                "minimized",
                Json::arr(self.minimized.iter().map(|m| {
                    Json::obj([
                        ("trial", Json::UInt(m.trial as u64)),
                        ("original_episodes", Json::UInt(m.original_episodes as u64)),
                        (
                            "minimized_episodes",
                            Json::UInt(m.plan.episodes.len() as u64),
                        ),
                        ("shrink_evals", Json::UInt(m.evals as u64)),
                        (
                            "violations",
                            Json::arr(m.violations.iter().map(SloViolation::to_json)),
                        ),
                    ])
                })),
            ),
        ])
    }
}

/// Run a chaos campaign: generate one randomized schedule per trial,
/// run them through the fault-tolerant sweep, judge each against the
/// SLO table, and shrink the first `max_shrinks` failing schedules to
/// minimal reproducers.
///
/// `run` executes one world under a candidate fault plan and must be a
/// pure function of the plan (the world config and driver are baked
/// into the closure). It is called from worker threads during the
/// sweep and serially during shrinking.
pub fn run_campaign<F>(cfg: &CampaignConfig, run: F) -> CampaignReport
where
    F: Fn(&FaultPlan) -> RunResult + Sync,
{
    let root = SimRng::new(cfg.seed);
    let jobs: Vec<TrialJob> = (0..cfg.trials)
        .map(|t| {
            let plan_seed = root.stream_indexed("campaign-trial", t as u64).seed();
            TrialJob {
                trial: t,
                plan_seed,
                plan: chaos_plan(plan_seed, cfg.num_aps, cfg.duration, &cfg.profile),
            }
        })
        .collect();

    // lint:allow(wall-clock) — the watchdog deadline is a real-time
    // hang budget for the host, never simulated time.
    let watchdog = cfg.watchdog_ms.map(core::time::Duration::from_millis);
    let sweep = try_sweep_with(
        &jobs,
        |j| run(&j.plan),
        |j| {
            format!(
                "trial={} plan_seed={:#018x} episodes={}",
                j.trial,
                j.plan_seed,
                j.plan.episodes.len()
            )
        },
        SweepOptions {
            workers: cfg.workers,
            watchdog,
        },
    );

    let mut outcomes = Vec::new();
    let mut minimized = Vec::new();
    for (job, result) in jobs.iter().zip(&sweep.results) {
        let Some(result) = result else { continue };
        let violations = cfg.slo.evaluate(result);
        if !violations.is_empty() && minimized.len() < cfg.max_shrinks {
            let outcome = shrink_schedule(&job.plan, cfg.shrink_budget, |p| {
                !cfg.slo.evaluate(&run(p)).is_empty()
            });
            let final_violations = cfg.slo.evaluate(&run(&outcome.plan));
            debug_assert!(
                !final_violations.is_empty(),
                "shrinker must preserve the violation"
            );
            minimized.push(MinimizedRepro {
                trial: job.trial,
                plan_seed: job.plan_seed,
                original_episodes: job.plan.episodes.len(),
                plan: outcome.plan,
                violations: final_violations,
                evals: outcome.evals,
            });
        }
        outcomes.push(TrialRecord {
            trial: job.trial,
            plan_seed: job.plan_seed,
            episodes: job.plan.episodes.len(),
            violations,
            bytes: result.bytes,
            connectivity: result.connectivity,
        });
    }

    CampaignReport {
        seed: cfg.seed,
        trials: cfg.trials,
        outcomes,
        job_failures: sweep.failures,
        hung: sweep.hung,
        minimized,
    }
}

/// One fork edge of the campaign's divergence trie (DESIGN.md §13):
/// trial `trial` resumed from `parent`'s checkpoint (`None` = the
/// fault-free root), inheriting `shared_events` already-simulated
/// events instead of re-simulating them from `t = 0`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForkEdge {
    /// The trial whose checkpoint chain served the fork; `None` means
    /// the fault-free root world.
    pub parent: Option<usize>,
    /// The trial that forked.
    pub trial: usize,
    /// Events inherited through this edge (the checkpoint's event
    /// count at fork time).
    pub shared_events: u64,
}

impl ForkEdge {
    /// Report form (sidecar only, never in [`CampaignReport`]).
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "parent",
                match self.parent {
                    Some(p) => Json::UInt(p as u64),
                    None => Json::Null,
                },
            ),
            ("trial", Json::UInt(self.trial as u64)),
            ("shared_events", Json::UInt(self.shared_events)),
        ])
    }
}

/// Work ledger of the forked campaign path: how much simulation the
/// checkpoint engine actually executed versus what the cold path pays
/// for the same bit-identical results.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ForkStats {
    /// Events actually executed: checkpoint building plus every
    /// resumed suffix.
    pub events_simulated: u64,
    /// Events the cold path would have executed for the same runs
    /// (each from `t = 0`).
    pub events_cold: u64,
    /// World snapshots materialized.
    pub checkpoints: usize,
    /// Runs resumed from a checkpoint.
    pub forks: usize,
    /// The shrink phase's share of `events_simulated`.
    pub shrink_events_simulated: u64,
    /// The shrink phase's share of `events_cold`.
    pub shrink_events_cold: u64,
    /// Deepest trial in the divergence trie (0 = every trial forked
    /// straight off the fault-free root or ran cold).
    pub tree_depth: usize,
    /// Per-trial fork edges of the divergence trie, in trial order.
    pub edges: Vec<ForkEdge>,
}

impl ForkStats {
    /// Cold-to-forked work ratio over the whole campaign (>1 = saved).
    pub fn speedup(&self) -> f64 {
        self.events_cold as f64 / self.events_simulated.max(1) as f64
    }

    /// Cold-to-forked work ratio of the shrink phase alone.
    pub fn shrink_speedup(&self) -> f64 {
        self.shrink_events_cold as f64 / self.shrink_events_simulated.max(1) as f64
    }

    /// Report form (kept out of [`CampaignReport::to_json`] so forked
    /// and cold reports diff byte-identically).
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("events_simulated", Json::UInt(self.events_simulated)),
            ("events_cold", Json::UInt(self.events_cold)),
            ("checkpoints", Json::UInt(self.checkpoints as u64)),
            ("forks", Json::UInt(self.forks as u64)),
            (
                "shrink_events_simulated",
                Json::UInt(self.shrink_events_simulated),
            ),
            ("shrink_events_cold", Json::UInt(self.shrink_events_cold)),
            ("speedup", Json::Num(self.speedup())),
            ("shrink_speedup", Json::Num(self.shrink_speedup())),
            ("tree_depth", Json::UInt(self.tree_depth as u64)),
            (
                "edges",
                Json::Arr(self.edges.iter().map(ForkEdge::to_json).collect()),
            ),
        ])
    }

    /// Total events inherited through trie edges (the trial phase's
    /// saved work; the shrink phase accounts separately).
    pub fn events_shared(&self) -> u64 {
        self.edges.iter().map(|e| e.shared_events).sum()
    }
}

/// Cap on live snapshots per [`CheckpointCache`]. Past it, eviction
/// drops the snapshot closest in time to its predecessor, keeping the
/// chain spread over the run.
const MAX_CHECKPOINTS: usize = 16;

/// Prefix-sharing run cache for schedule shrinking (DESIGN.md §13).
///
/// Holds a chain of world snapshots advanced under a *reference* plan.
/// To evaluate a candidate, it computes
/// [`FaultPlan::first_divergence`] against the reference, resumes the
/// latest snapshot strictly before that point with the candidate
/// swapped in ([`World::fork_with_plan`]) — bit-identical to a cold
/// run of the candidate (`tests/snapshot_determinism.rs`) for the cost
/// of the divergent suffix. When the shrinker adopts a candidate,
/// [`adopt`](CheckpointCache::adopt) rebases the cache: snapshots
/// taken before the old/new divergence have plan-independent histories
/// and survive with the new plan swapped in.
pub struct CheckpointCache<C: ClientSystem + Clone, F: Fn(&FaultPlan) -> World<C>> {
    make: F,
    reference: FaultPlan,
    /// `(advanced-to, snapshot)`, ascending; each snapshot has consumed
    /// exactly the events at or before its key, under `reference`.
    chain: Vec<(SimTime, World<C>)>,
    /// Work accounting, accumulated across every `run_plan` call.
    pub stats: ForkStats,
}

impl<C, F> CheckpointCache<C, F>
where
    C: ClientSystem + Clone,
    F: Fn(&FaultPlan) -> World<C>,
{
    /// A cache over worlds built by `make` (a pure function of the
    /// plan), shrinking away from `reference`.
    pub fn new(make: F, reference: FaultPlan) -> CheckpointCache<C, F> {
        CheckpointCache {
            make,
            reference,
            chain: Vec::new(),
            stats: ForkStats::default(),
        }
    }

    /// The schedule the chain is currently advanced under.
    pub fn reference(&self) -> &FaultPlan {
        &self.reference
    }

    /// Run `plan` to completion, resuming from the last safe point
    /// before it first diverges from the reference. Bit-identical to
    /// `make(plan).run()`.
    pub fn run_plan(&mut self, plan: &FaultPlan) -> RunResult {
        let fork = match self.reference.first_divergence(plan) {
            // Diverges at t=0: nothing to share.
            Some(d) if d == SimTime::ZERO => return self.run_cold(plan),
            Some(d) => {
                let Some(i) = self.base_at(d) else {
                    return self.run_cold(plan);
                };
                self.chain[i].1.fork_with_plan(plan.clone())
            }
            // Behaviorally identical: any snapshot resumes it.
            None => match self.chain.last() {
                Some((_, w)) => w.fork_with_plan(plan.clone()),
                None => return self.run_cold(plan),
            },
        };
        let resumed_from = fork.events_processed();
        let (result, _) = fork.finish();
        self.stats.forks += 1;
        self.stats.events_simulated += result.events - resumed_from;
        self.stats.events_cold += result.events;
        result
    }

    /// Rebase onto an adopted candidate (the shrinker just proved
    /// `new_ref` still fails). Snapshots whose look-ahead stayed
    /// strictly before the old/new divergence have plan-independent
    /// histories and are kept, with the new plan swapped in; the rest
    /// are dropped.
    pub fn adopt(&mut self, new_ref: FaultPlan) {
        let d = self.reference.first_divergence(&new_ref);
        self.chain
            .retain(|(_, w)| d.is_none_or(|d| w.plan_horizon() < d));
        for (_, w) in &mut self.chain {
            w.rebase_plan(new_ref.clone());
        }
        self.reference = new_ref;
    }

    fn run_cold(&mut self, plan: &FaultPlan) -> RunResult {
        let (result, _) = (self.make)(plan).run_with();
        self.stats.events_simulated += result.events;
        self.stats.events_cold += result.events;
        result
    }

    /// Index of a snapshot safe to rebase onto a plan diverging at
    /// `divergence`, advanced as close to it as the look-ahead allows —
    /// built from the nearest usable earlier snapshot (or from scratch)
    /// on a miss. A fresh world is always usable, so this only returns
    /// `None` when nothing precedes the divergence at all.
    fn base_at(&mut self, divergence: SimTime) -> Option<usize> {
        let target = SimTime::from_micros(divergence.as_micros() - 1);
        // Latest snapshot at or before the target whose look-ahead
        // stayed strictly before the divergence.
        let base = self
            .chain
            .iter()
            .rposition(|(t, w)| *t <= target && w.plan_horizon() < divergence);
        if let Some(i) = base {
            if self.chain[i].0 == target {
                return Some(i);
            }
        }
        let (w, achieved, executed) = match base {
            Some(i) => self.chain[i].1.advance_shared(target, divergence),
            None => (self.make)(&self.reference).advance_shared(target, divergence),
        };
        self.stats.events_simulated += executed;
        if let Some(i) = base {
            if achieved <= self.chain[i].0 {
                // The advance gained nothing; fork the base itself.
                return Some(i);
            }
        }
        self.stats.checkpoints += 1;
        let pos = base.map_or(0, |i| i + 1);
        self.chain.insert(pos, (achieved, w));
        Some(self.evict_over_cap(pos))
    }

    /// Enforce [`MAX_CHECKPOINTS`], never evicting `keep` (the entry
    /// just built) or the earliest snapshot; returns `keep`'s index
    /// after any removal.
    fn evict_over_cap(&mut self, keep: usize) -> usize {
        if self.chain.len() <= MAX_CHECKPOINTS {
            return keep;
        }
        let victim = (1..self.chain.len())
            .filter(|&i| i != keep)
            .min_by_key(|&i| self.chain[i].0.saturating_since(self.chain[i - 1].0))
            .expect("cap exceeds 2, so a victim exists");
        self.chain.remove(victim);
        if victim < keep {
            keep - 1
        } else {
            keep
        }
    }
}

/// Who a trial forks from in the divergence trie.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TrieParent {
    /// No shareable prefix at all (divergence at `t = 0` against every
    /// candidate): the trial runs cold.
    Cold,
    /// The fault-free root world.
    Root,
    /// A previous trial's checkpoint chain.
    Trial(usize),
}

/// One node of the grow tree the trial-phase checkpoints are built
/// through ([`spider_simcore::grow_tree_with`]).
enum GrowBase {
    /// A trie root: construct a fresh world under `plan` — the
    /// fault-free plan, or the plan of a cold trial other trials
    /// share a faulty prefix with.
    Construct(FaultPlan),
    /// A checkpoint serving one trial: advance the grow-parent's world
    /// under `plan` (the plan-parent's plan) to `target`, keeping the
    /// plan horizon strictly before `divergence`. `swap` re-plans the
    /// parent world onto `plan` first — needed exactly when the
    /// grow-parent is a sharing trial's own checkpoint, which is still
    /// advanced under *its* parent's plan.
    Advance {
        plan: FaultPlan,
        swap: bool,
        target: SimTime,
        divergence: SimTime,
    },
}

/// Checkpoint state per grow-tree node: the world (or `None` when the
/// node could not be built — a panicking or unusable prefix degrades
/// its subtree to cold runs, never to wrong results) plus the events
/// executed building it.
type NodeState<C> = (Option<World<C>>, u64);

/// Arrange trial plans into a divergence trie: each trial's parent is
/// the candidate (fault-free root, or any earlier trial) whose plan
/// shares the deepest prefix with it, measured by
/// [`FaultPlan::divergence_rank`]. Strict improvement over earlier
/// candidates is required, which both makes the choice deterministic
/// and guarantees chain validity: if a deeper candidate `c` (with
/// parent `p`) is chosen over `p`, then `d(c, k) > d(p, k) >=
/// min(d(p, c), d(c, k))` forces `d(c, k) > d(p, c)` — so `c`'s
/// checkpoint, advanced to just before `d(p, c)`, can always serve the
/// child's share point.
///
/// Returns per-trial parents, divergences from the chosen parent, and
/// trie depths (roots at 0).
fn plan_trie(plans: &[FaultPlan]) -> (Vec<TrieParent>, Vec<SimTime>, Vec<usize>) {
    let none_plan = FaultPlan::none();
    let mut parents: Vec<TrieParent> = Vec::with_capacity(plans.len());
    let mut divergences: Vec<SimTime> = Vec::with_capacity(plans.len());
    let mut depths: Vec<usize> = Vec::with_capacity(plans.len());
    for (i, plan) in plans.iter().enumerate() {
        let mut best_d = none_plan.divergence_rank(plan);
        let mut best = TrieParent::Root;
        for (j, candidate) in plans.iter().enumerate().take(i) {
            let d = candidate.divergence_rank(plan);
            if d > best_d {
                best_d = d;
                best = TrieParent::Trial(j);
            }
        }
        if best_d == SimTime::ZERO {
            parents.push(TrieParent::Cold);
            divergences.push(SimTime::ZERO);
            depths.push(0);
        } else {
            depths.push(match best {
                TrieParent::Trial(j) => depths[j] + 1,
                _ => 1,
            });
            parents.push(best);
            divergences.push(best_d);
        }
    }
    (parents, divergences, depths)
}

/// Run a chaos campaign through the checkpoint/fork engine.
///
/// Semantically identical to [`run_campaign`] — the [`CampaignReport`]
/// is byte-for-byte the same (CI diffs the two JSON forms) — but the
/// work is shared:
///
/// * **trial phase** — trial plans are arranged into a divergence
///   **trie** ([`plan_trie`]): each trial forks from the deepest
///   checkpoint whose plan shares a prefix with it — the fault-free
///   root, or an earlier trial's checkpoint when the two schedules
///   share a *faulty* prefix. Checkpoints are grown level by level
///   through [`spider_simcore::grow_tree_with`] (siblings in
///   parallel), each advanced under its plan-parent's plan to just
///   before the child's divergence, and [`ForkStats::edges`] accounts
///   the events inherited per tree edge,
/// * **shrink phase** — each failing trial gets a [`CheckpointCache`];
///   every ddmin / window-narrowing candidate resumes from the last
///   event before it diverges from the current reference schedule, and
///   adopted candidates rebase the cache in place.
///
/// `make` builds a cold world under a plan and must be a pure function
/// of it. Returns the report plus the [`ForkStats`] work ledger.
pub fn run_campaign_forked<C, F>(cfg: &CampaignConfig, make: F) -> (CampaignReport, ForkStats)
where
    C: ClientSystem + Clone + Send + Sync,
    F: Fn(&FaultPlan) -> World<C> + Sync,
{
    let root = SimRng::new(cfg.seed);
    let jobs: Vec<TrialJob> = (0..cfg.trials)
        .map(|t| {
            let plan_seed = root.stream_indexed("campaign-trial", t as u64).seed();
            TrialJob {
                trial: t,
                plan_seed,
                plan: chaos_plan(plan_seed, cfg.num_aps, cfg.duration, &cfg.profile),
            }
        })
        .collect();

    // Trial-phase checkpoints: arrange the plans into the divergence
    // trie, then grow one checkpoint chain per plan-parent — each
    // child's checkpoint is its parent's world advanced (under the
    // parent's plan) to just before the child's divergence. Shared
    // prefixes — fault-free *and* faulty — are simulated exactly once.
    // A checkpoint may stop short of its share point when the medium's
    // look-ahead would peek past the divergence — the fork then
    // consumes the remainder under the trial's own plan, which agrees
    // up to that point.
    let mut stats = ForkStats::default();
    let plans: Vec<FaultPlan> = jobs.iter().map(|j| j.plan.clone()).collect();
    let (parents, divergences, depths) = plan_trie(&plans);

    // Children per plan-parent, sorted by share point (ascending, tie
    // by trial index) so each chain advances monotonically.
    let mut root_children: Vec<usize> = Vec::new();
    let mut trial_children: Vec<Vec<usize>> = vec![Vec::new(); jobs.len()];
    for (i, parent) in parents.iter().enumerate() {
        match parent {
            TrieParent::Root => root_children.push(i),
            TrieParent::Trial(j) => trial_children[*j].push(i),
            TrieParent::Cold => {}
        }
    }
    let share_key = |i: usize| (divergences[i], i);
    root_children.sort_unstable_by_key(|&i| share_key(i));
    for children in &mut trial_children {
        children.sort_unstable_by_key(|&i| share_key(i));
    }

    // Lay the grow-tree nodes out breadth-first (parents strictly
    // before children, as grow_tree_with requires): one Construct node
    // per trie root, then per plan-parent a sibling chain where each
    // checkpoint's grow-parent is the previous sibling's.
    let mut nodes: Vec<(Option<usize>, GrowBase)> = Vec::new();
    let mut node_of_trial: Vec<Option<usize>> = vec![None; jobs.len()];
    let mut queue: std::collections::VecDeque<(TrieParent, usize)> =
        std::collections::VecDeque::new();
    nodes.push((None, GrowBase::Construct(FaultPlan::none())));
    queue.push_back((TrieParent::Root, 0));
    for (i, parent) in parents.iter().enumerate() {
        if *parent == TrieParent::Cold && !trial_children[i].is_empty() {
            nodes.push((None, GrowBase::Construct(jobs[i].plan.clone())));
            queue.push_back((TrieParent::Trial(i), nodes.len() - 1));
        }
    }
    while let Some((plan_parent, entry_node)) = queue.pop_front() {
        let (children, chain_plan, entry_is_checkpoint) = match plan_parent {
            TrieParent::Root => (&root_children, FaultPlan::none(), false),
            TrieParent::Trial(q) => (
                &trial_children[q],
                jobs[q].plan.clone(),
                parents[q] != TrieParent::Cold,
            ),
            TrieParent::Cold => unreachable!("cold trials are never enqueued as parents"),
        };
        let mut grow_parent = entry_node;
        for (k, &child) in children.iter().enumerate() {
            let divergence = divergences[child];
            let target = SimTime::from_micros(divergence.as_micros().saturating_sub(1));
            nodes.push((
                Some(grow_parent),
                GrowBase::Advance {
                    plan: chain_plan.clone(),
                    // Only the first fork off a sharing trial's own
                    // checkpoint must re-plan; later siblings extend a
                    // chain already under the plan-parent's plan.
                    swap: k == 0 && entry_is_checkpoint,
                    target,
                    divergence,
                },
            ));
            grow_parent = nodes.len() - 1;
            node_of_trial[child] = Some(grow_parent);
            if !trial_children[child].is_empty() {
                queue.push_back((TrieParent::Trial(child), grow_parent));
            }
        }
    }

    let workers = if cfg.workers == 0 {
        worker_count()
    } else {
        cfg.workers
    };
    let states: Vec<NodeState<C>> = grow_tree_with(
        &nodes,
        |parent: Option<&NodeState<C>>, base: &GrowBase| {
            // A panicking prefix degrades its subtree to cold runs
            // (where try_sweep quarantines the panic with a proper
            // fingerprint) instead of sinking the whole campaign.
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match base {
                GrowBase::Construct(plan) => (Some(make(plan)), 0),
                GrowBase::Advance {
                    plan,
                    swap,
                    target,
                    divergence,
                } => {
                    let Some(pw) = parent.and_then(|p| p.0.as_ref()) else {
                        return (None, 0);
                    };
                    if pw.plan_horizon() >= *divergence {
                        // Defensive: the trie construction keeps chain
                        // horizons below every child divergence, but a
                        // stale chain must degrade, never mis-share.
                        return (None, 0);
                    }
                    let (w, _, executed) = if *swap {
                        pw.fork_with_plan(plan.clone())
                            .advance_shared(*target, *divergence)
                    } else {
                        pw.advance_shared(*target, *divergence)
                    };
                    (Some(w), executed)
                }
            }))
            .unwrap_or((None, 0))
        },
        workers,
    );

    for ((_, base), (world, executed)) in nodes.iter().zip(&states) {
        stats.events_simulated += *executed;
        if matches!(base, GrowBase::Advance { .. }) && world.is_some() {
            stats.checkpoints += 1;
        }
    }
    for (i, node) in node_of_trial.iter().enumerate() {
        let Some(world) = node.and_then(|n| states[n].0.as_ref()) else {
            continue;
        };
        stats.edges.push(ForkEdge {
            parent: match parents[i] {
                TrieParent::Trial(j) => Some(j),
                _ => None,
            },
            trial: i,
            shared_events: world.events_processed(),
        });
        stats.tree_depth = stats.tree_depth.max(depths[i]);
    }

    // lint:allow(wall-clock) — the watchdog deadline is a real-time
    // hang budget for the host, never simulated time.
    let watchdog = cfg.watchdog_ms.map(core::time::Duration::from_millis);
    let sweep = try_sweep_with(
        &jobs,
        |j| {
            let base = node_of_trial[j.trial].and_then(|n| states[n].0.as_ref());
            match base {
                Some(base) => {
                    let fork = base.fork_with_plan(j.plan.clone());
                    let resumed_from = fork.events_processed();
                    let (r, _) = fork.finish();
                    (r.events - resumed_from, r)
                }
                None => {
                    let (r, _) = make(&j.plan).run_with();
                    (r.events, r)
                }
            }
        },
        |j| {
            format!(
                "trial={} plan_seed={:#018x} episodes={}",
                j.trial,
                j.plan_seed,
                j.plan.episodes.len()
            )
        },
        SweepOptions {
            workers: cfg.workers,
            watchdog,
        },
    );
    stats.forks += stats.edges.len();

    let mut outcomes = Vec::new();
    let mut minimized = Vec::new();
    for (job, slot) in jobs.iter().zip(&sweep.results) {
        let Some((simulated, result)) = slot else {
            continue;
        };
        stats.events_simulated += simulated;
        stats.events_cold += result.events;
        let violations = cfg.slo.evaluate(result);
        if !violations.is_empty() && minimized.len() < cfg.max_shrinks {
            let mut cache = CheckpointCache::new(&make, job.plan.clone());
            let outcome = shrink_schedule(&job.plan, cfg.shrink_budget, |p| {
                let fails = !cfg.slo.evaluate(&cache.run_plan(p)).is_empty();
                if fails {
                    // Mirror the shrinker's adoption so the next
                    // candidate diffs against the right reference.
                    cache.adopt(p.clone());
                }
                fails
            });
            let final_violations = cfg.slo.evaluate(&cache.run_plan(&outcome.plan));
            debug_assert!(
                !final_violations.is_empty(),
                "shrinker must preserve the violation"
            );
            stats.shrink_events_simulated += cache.stats.events_simulated;
            stats.shrink_events_cold += cache.stats.events_cold;
            stats.checkpoints += cache.stats.checkpoints;
            stats.forks += cache.stats.forks;
            minimized.push(MinimizedRepro {
                trial: job.trial,
                plan_seed: job.plan_seed,
                original_episodes: job.plan.episodes.len(),
                plan: outcome.plan,
                violations: final_violations,
                evals: outcome.evals,
            });
        }
        outcomes.push(TrialRecord {
            trial: job.trial,
            plan_seed: job.plan_seed,
            episodes: job.plan.episodes.len(),
            violations,
            bytes: result.bytes,
            connectivity: result.connectivity,
        });
    }
    stats.events_simulated += stats.shrink_events_simulated;
    stats.events_cold += stats.shrink_events_cold;

    (
        CampaignReport {
            seed: cfg.seed,
            trials: cfg.trials,
            outcomes,
            job_failures: sweep.failures,
            hung: sweep.hung,
            minimized,
        },
        stats,
    )
}

/// Fault-free performance envelope of one campaign-matrix cell — what
/// the (mode, driver) pairing achieves when nothing is attacking it.
/// Calibration input for [`calibrated_slo`]: budgets judge the faulted
/// runs *relative to what this cell can actually do*, so a
/// single-channel baseline is not held to a multi-AP Spider bar.
#[derive(Debug, Clone, PartialEq)]
pub struct Envelope {
    /// Payload bytes the fault-free run delivered.
    pub bytes: u64,
    /// Connectivity fraction of the fault-free run.
    pub connectivity: f64,
    /// Fault-free p90 DHCP acquisition, seconds (`None` when the run
    /// never completed an acquisition — nothing to calibrate against).
    pub dhcp_p90_s: Option<f64>,
}

impl Envelope {
    /// Measure the envelope off a fault-free run.
    pub fn measure(r: &RunResult) -> Envelope {
        Envelope {
            bytes: r.bytes,
            connectivity: r.connectivity,
            dhcp_p90_s: SloMetric::MaxDhcpP90S.measure(r),
        }
    }

    /// Report form.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("bytes", Json::UInt(self.bytes)),
            ("connectivity", Json::Num(self.connectivity)),
            (
                "dhcp_p90_s",
                match self.dhcp_p90_s {
                    Some(v) => Json::Num(v),
                    None => Json::Null,
                },
            ),
        ])
    }
}

/// Paper-derived margins layered on a measured [`Envelope`] to produce
/// one matrix cell's calibrated [`SloTable`]. Detection and recovery
/// budgets are absolute (they come from the monitor's timers, not from
/// throughput); the byte floor and DHCP ceiling scale with the
/// envelope.
#[derive(Debug, Clone, PartialEq)]
pub struct SloMargins {
    /// Per-class detection budgets, seconds. Classes absent here are
    /// not judged for detection in this cell.
    pub detect_s: Vec<(&'static str, f64)>,
    /// Recovery ceiling, seconds.
    pub recover_s: f64,
    /// The faulted run must still deliver at least this fraction of
    /// the envelope's bytes (floored at one byte, so a cell whose
    /// envelope is empty only demands *something* got through).
    pub bytes_frac: f64,
    /// DHCP p90 ceiling = envelope p90 × this headroom ...
    pub dhcp_headroom: f64,
    /// ... but never tighter than this floor, seconds — which is also
    /// the ceiling when the envelope had no acquisitions to calibrate
    /// against.
    pub dhcp_floor_s: f64,
}

impl SloMargins {
    /// Margins for Spider's §3.2.2 monitor (100 ms pings, 30 losses):
    ///
    /// * blackout / zombie / ARP-poison ≤ 3.15 s — 30 losses at
    ///   10 pings/s is 3.0 s, plus up to one full 100 ms ping tick of
    ///   onset phase. An ARP-poisoned gateway swallows the fallback
    ///   pings too, so the end-to-end clock runs undisturbed,
    /// * captive portal ≤ 16 s — the gateway fallback arms at ~1.0 s
    ///   and keeps the monitor *happy*; the zero-progress portal
    ///   classifier needs its full 10 s window on top, and the detect
    ///   clock starts at the first *hijacked* packet, which can land
    ///   seconds before the monitored session's pings even start
    ///   (town cells measure up to ~14.6 s),
    /// * asymmetric loss ≤ 45 s — directional loss only kills liveness
    ///   while it is deep, so the budget is the generator's episode-
    ///   window ceiling rather than a monitor constant.
    pub fn spider_paper() -> SloMargins {
        SloMargins {
            // 3.0 s monitor budget + one full 100 ms ping tick of
            // phase: the detect clock starts at the first swallowed
            // packet, which lands anywhere within the ping cadence.
            detect_s: vec![
                ("blackout", 3.15),
                ("zombie", 3.15),
                ("arp-poison", 3.15),
                ("captive-portal", 16.0),
                ("asymmetric-loss", 45.0),
            ],
            recover_s: 45.0,
            bytes_frac: 0.05,
            dhcp_headroom: 3.0,
            dhcp_floor_s: 10.0,
        }
    }

    /// Margins for the stock supplicant's 1 s × 12-failure monitor:
    /// every data-plane class collapses into one "pings stopped"
    /// signal at ~12 s (it never falls back to the gateway, so a
    /// captive portal is detected *sooner* than under Spider — by
    /// accident of having no fallback to trap). Recovery is slower
    /// (full rescans from channel 1) and the byte floor looser.
    pub fn stock_monitor() -> SloMargins {
        SloMargins {
            detect_s: vec![
                ("blackout", 13.0),
                ("zombie", 13.0),
                ("arp-poison", 13.0),
                ("captive-portal", 13.0),
                ("asymmetric-loss", 60.0),
            ],
            recover_s: 90.0,
            bytes_frac: 0.01,
            dhcp_headroom: 3.0,
            dhcp_floor_s: 15.0,
        }
    }
}

/// Build one matrix cell's SLO table from its measured fault-free
/// envelope plus paper margins (DESIGN.md §12).
pub fn calibrated_slo(envelope: &Envelope, margins: &SloMargins) -> SloTable {
    let mut rules: Vec<SloRule> = margins
        .detect_s
        .iter()
        .map(|&(class, budget)| SloRule {
            metric: SloMetric::MaxDetectS(class),
            budget,
        })
        .collect();
    rules.push(SloRule {
        metric: SloMetric::MaxRecoverS,
        budget: margins.recover_s,
    });
    rules.push(SloRule {
        metric: SloMetric::MaxDhcpP90S,
        budget: match envelope.dhcp_p90_s {
            Some(p90) => (p90 * margins.dhcp_headroom).max(margins.dhcp_floor_s),
            None => margins.dhcp_floor_s,
        },
    });
    rules.push(SloRule {
        metric: SloMetric::MinBytes,
        budget: (envelope.bytes as f64 * margins.bytes_frac).max(1.0),
    });
    SloTable { rules }
}

/// One judged cell of the campaign matrix: an operation-mode / driver
/// pairing with its calibration envelope, the SLO table derived from
/// it, and the full campaign outcome under that table.
#[derive(Debug, Clone)]
pub struct MatrixCell {
    /// Operation-mode label (rows of the matrix).
    pub mode: String,
    /// Driver label (columns of the matrix).
    pub driver: String,
    /// The measured fault-free envelope.
    pub envelope: Envelope,
    /// The calibrated table every trial in this cell was judged by.
    pub slo: SloTable,
    /// The campaign outcome.
    pub report: CampaignReport,
}

impl MatrixCell {
    /// Report form.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("mode", Json::str(self.mode.clone())),
            ("driver", Json::str(self.driver.clone())),
            ("envelope", self.envelope.to_json()),
            ("slo", self.slo.to_json()),
            ("report", self.report.to_json()),
        ])
    }
}

/// The aggregated matrix: every cell's calibration and campaign
/// outcome in one artifact. Byte-deterministic for a deterministic
/// runner at any worker count — the timing-only fields (`hung`, fork
/// statistics) stay out of it.
#[derive(Debug, Clone)]
pub struct MatrixReport {
    /// Campaign seed shared by every cell (each cell judges the *same*
    /// generated schedules, so columns are comparable).
    pub seed: u64,
    /// Cells in caller-fixed (mode-major) order.
    pub cells: Vec<MatrixCell>,
}

impl MatrixReport {
    /// Cells whose campaign had at least one violating or failed trial.
    pub fn violating_cells(&self) -> usize {
        self.cells.iter().filter(|c| !c.report.is_clean()).count()
    }

    /// Whether every cell came back clean.
    pub fn is_clean(&self) -> bool {
        self.violating_cells() == 0
    }

    /// The byte-diffable artifact.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("artifact", Json::str("spider-chaos-matrix")),
            ("seed", Json::UInt(self.seed)),
            ("cells", Json::UInt(self.cells.len() as u64)),
            ("violating_cells", Json::UInt(self.violating_cells() as u64)),
            (
                "matrix",
                Json::arr(self.cells.iter().map(MatrixCell::to_json)),
            ),
        ])
    }
}

/// Run one matrix cell: measure the fault-free envelope, calibrate the
/// cell's SLO table from it, then run the campaign under that table —
/// forked (checkpoint prefix-sharing) or cold. The caller supplies the
/// labels and the world factory; the same `cfg.seed` across cells
/// means every cell judges the same generated schedules.
pub fn run_matrix_cell<C, F>(
    mode: &str,
    driver: &str,
    cfg: &CampaignConfig,
    margins: &SloMargins,
    forked: bool,
    make: F,
) -> (MatrixCell, ForkStats)
where
    C: ClientSystem + Clone + Send + Sync,
    F: Fn(&FaultPlan) -> World<C> + Sync,
{
    // Calibration run: this cell, nothing attacking it.
    let (baseline, _) = make(&FaultPlan::none()).run_with();
    let envelope = Envelope::measure(&baseline);
    let mut cell_cfg = cfg.clone();
    cell_cfg.slo = calibrated_slo(&envelope, margins);
    let (report, stats) = if forked {
        run_campaign_forked(&cell_cfg, &make)
    } else {
        (
            run_campaign(&cell_cfg, |p| make(p).run_with().0),
            ForkStats::default(),
        )
    };
    (
        MatrixCell {
            mode: mode.to_string(),
            driver: driver.to_string(),
            envelope,
            slo: cell_cfg.slo,
            report,
        },
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs_f64(s)
    }

    fn dur(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn chaos_plans_are_deterministic_and_in_bounds() {
        let profile = ChaosProfile::standard();
        let a = chaos_plan(42, 10, dur(300), &profile);
        let b = chaos_plan(42, 10, dur(300), &profile);
        assert_eq!(a, b);
        assert!(a.episodes.len() >= profile.episodes.0);
        for e in &a.episodes {
            assert!(e.start < e.end, "{e:?}");
            assert!(e.end <= t(300.0), "{e:?}");
            if let Some(ap) = e.ap {
                assert!(ap < 10);
            }
        }
        assert_ne!(a, chaos_plan(43, 10, dur(300), &profile));
    }

    #[test]
    fn back_loaded_plans_leave_a_fault_free_prefix() {
        // start >= frac * (horizon - dur), and dur is capped by the
        // window bound, so every episode of every seed starts past
        // frac * (horizon - window_hi).
        let profile = ChaosProfile::back_loaded(0.5);
        let floor = t(0.5 * (300.0 - profile.window_secs.1));
        for seed in 0..10 {
            let plan = chaos_plan(seed, 10, dur(300), &profile);
            for e in &plan.episodes {
                assert!(e.start >= floor, "seed {seed}: {e:?} starts too early");
            }
        }
        // The neutral window is a no-op: same draws as standard().
        let neutral = ChaosProfile {
            start_frac: (0.0, 1.0),
            ..ChaosProfile::standard()
        };
        assert_eq!(
            chaos_plan(42, 10, dur(300), &neutral),
            chaos_plan(42, 10, dur(300), &ChaosProfile::standard())
        );
    }

    #[test]
    fn chaos_plans_produce_compound_overlaps() {
        // Across a handful of seeds, the generator must emit at least
        // one pair of distinct-class episodes overlapping on the same
        // target, and at least one *windowed* ICMP blackhole — the two
        // things FaultPlan::seeded never produces.
        let profile = ChaosProfile::aggressive();
        let mut compound = false;
        let mut windowed_icmp = false;
        for seed in 0..20 {
            let plan = chaos_plan(seed, 8, dur(600), &profile);
            for (i, a) in plan.episodes.iter().enumerate() {
                if a.kind == FaultKind::IcmpBlackhole && (a.start > t(0.0) || a.end < t(600.0)) {
                    windowed_icmp = true;
                }
                for b in &plan.episodes[i + 1..] {
                    if a.ap == b.ap
                        && a.kind.label() != b.kind.label()
                        && a.start < b.end
                        && b.start < a.end
                    {
                        compound = true;
                    }
                }
            }
        }
        assert!(compound, "no compound overlap in 20 seeds");
        assert!(windowed_icmp, "no windowed ICMP blackhole in 20 seeds");
    }

    fn run_with(detect: &[(FaultKind, f64)], recover: &[f64], bytes: u64) -> RunResult {
        use spider_simcore::{Cdf, IntervalTracker};
        let tracker = IntervalTracker::new(SimTime::ZERO, false);
        let mut faults = crate::faults::FaultStats::default();
        for &(kind, t) in detect {
            faults.record_detect(t, kind);
        }
        faults.recover_times_s = recover.to_vec();
        RunResult {
            label: "slo-test".into(),
            duration: dur(100),
            bytes,
            avg_throughput_bps: bytes as f64 / 100.0,
            connectivity: 0.5,
            instantaneous_bps: Cdf::from_samples(Vec::new()),
            intervals: tracker.finish(SimTime::from_secs(100)),
            join_log: spider_mac80211::JoinLog::new(),
            switches: 0,
            aps_encountered: 1,
            tcp_timeouts: 0,
            tcp_retransmits: 0,
            faults,
            events: 1,
        }
    }

    #[test]
    fn slo_table_judges_per_class_budgets() {
        let table = SloTable::paper_default();
        // Clean run: inside every budget.
        let ok = run_with(
            &[(FaultKind::Blackout, 2.0), (FaultKind::Zombie, 3.0)],
            &[10.0],
            1000,
        );
        assert!(table.evaluate(&ok).is_empty());
        // Zombie detection blows its class budget; blackout stays clean.
        let slow_zombie = run_with(
            &[(FaultKind::Blackout, 2.0), (FaultKind::Zombie, 4.0)],
            &[],
            1000,
        );
        let v = table.evaluate(&slow_zombie);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule.metric, SloMetric::MaxDetectS("zombie"));
        assert_eq!(v[0].measured, 4.0);
        // Starved run: floor metric fires.
        let starved = run_with(&[], &[], 0);
        let v = table.evaluate(&starved);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule.metric, SloMetric::MinBytes);
    }

    #[test]
    fn slo_rules_with_no_samples_do_not_fire() {
        let table = SloTable {
            rules: vec![
                SloRule {
                    metric: SloMetric::MaxDetectS("blackout"),
                    budget: 0.0,
                },
                SloRule {
                    metric: SloMetric::MaxRecoverS,
                    budget: 0.0,
                },
                SloRule {
                    metric: SloMetric::MaxDhcpP90S,
                    budget: 0.0,
                },
            ],
        };
        let quiet = run_with(&[], &[], 100);
        assert!(table.evaluate(&quiet).is_empty());
    }

    /// A synthetic failure oracle for the shrinker: the plan "fails"
    /// iff it still contains a blackout episode covering t=50 on AP 0.
    fn synthetic_fails(plan: &FaultPlan) -> bool {
        plan.blackout(t(50.0), 0)
    }

    fn noisy_plan() -> FaultPlan {
        let mut episodes = vec![FaultEpisode {
            ap: Some(0),
            kind: FaultKind::Blackout,
            start: t(10.0),
            end: t(90.0),
        }];
        // Noise: other APs, other classes, non-covering windows.
        for i in 0..12 {
            episodes.push(FaultEpisode {
                ap: Some(1 + (i % 4)),
                kind: if i % 2 == 0 {
                    FaultKind::Zombie
                } else {
                    FaultKind::LossBurst { extra: 0.3 }
                },
                start: t(i as f64 * 7.0),
                end: t(i as f64 * 7.0 + 5.0),
            });
        }
        FaultPlan { episodes }
    }

    #[test]
    fn shrinker_drops_noise_and_narrows_windows() {
        let plan = noisy_plan();
        assert!(synthetic_fails(&plan));
        let out = shrink_schedule(&plan, 500, synthetic_fails);
        // All 12 noise episodes gone, the culprit left.
        assert_eq!(out.plan.episodes.len(), 1, "{:?}", out.plan);
        let e = out.plan.episodes[0];
        assert_eq!(e.kind, FaultKind::Blackout);
        assert_eq!(e.ap, Some(0));
        // Window narrowed around the t=50 oracle point: strictly inside
        // the original 80 s, still covering 50.
        assert!(synthetic_fails(&out.plan));
        let width = e.end.saturating_since(e.start);
        assert!(
            width < SimDuration::from_secs(80),
            "window not narrowed: {width}"
        );
        assert!(e.start <= t(50.0) && t(50.0) < e.end);
        assert!(out.evals > 0);
    }

    #[test]
    fn shrinker_respects_budget() {
        let plan = noisy_plan();
        let out = shrink_schedule(&plan, 3, synthetic_fails);
        assert!(out.evals <= 3);
        // Whatever it returns must still fail.
        assert!(synthetic_fails(&out.plan));
    }

    #[test]
    fn shrinker_is_deterministic() {
        let plan = noisy_plan();
        let a = shrink_schedule(&plan, 500, synthetic_fails);
        let b = shrink_schedule(&plan, 500, synthetic_fails);
        assert_eq!(a.plan, b.plan);
        assert_eq!(a.evals, b.evals);
    }

    #[test]
    fn repro_artifact_round_trips() {
        let repro = MinimizedRepro {
            trial: 3,
            plan_seed: 0xdead_beef,
            original_episodes: 9,
            plan: noisy_plan(),
            violations: vec![SloViolation {
                rule: SloRule {
                    metric: SloMetric::MaxDetectS("blackout"),
                    budget: 3.05,
                },
                measured: 7.5,
            }],
            evals: 41,
        };
        let text = repro.to_json().pretty();
        let back = MinimizedRepro::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back.trial, 3);
        assert_eq!(back.plan_seed, 0xdead_beef);
        assert_eq!(back.original_episodes, 9);
        assert_eq!(back.plan, repro.plan, "plans must replay identically");
        // Wrong magic is rejected.
        assert!(
            MinimizedRepro::from_json(&Json::obj([("artifact", Json::str("something-else"))]))
                .is_none()
        );
    }
}
