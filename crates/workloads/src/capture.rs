//! Frame capture — the simulator's pcap.
//!
//! When enabled on a [`WorldConfig`](crate::world::WorldConfig), every
//! frame that actually reaches an antenna is appended to a capture file:
//! a small header, then length-prefixed records of
//! `(timestamp, direction, encoded frame)` using the `spider-wire`
//! codec. [`read_capture`] loads one back for offline analysis — the
//! smoltcp `--pcap` idiom adapted to the simulated world.

// Capture *is* the file-I/O subsystem: writing frames to disk is its
// purpose, it only runs when explicitly enabled on a config, and it
// never feeds back into simulation state. lint:allow-file(sans-io)
use spider_simcore::SimTime;
use spider_wire::codec::{decode, encode_into, CodecError};
use spider_wire::Frame;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// File magic: `SPDR` + format version.
const MAGIC: &[u8; 5] = b"SPDR\x01";

/// Which antenna received the frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Arrived at the mobile client.
    ToClient,
    /// Arrived at an AP.
    ToAp,
}

/// One captured frame.
#[derive(Debug, Clone, PartialEq)]
pub struct CaptureRecord {
    /// Delivery time.
    pub at: SimTime,
    /// Receiving side.
    pub direction: Direction,
    /// The frame.
    pub frame: Frame,
}

/// Streaming capture writer.
pub struct CaptureWriter {
    out: BufWriter<File>,
    /// Frames written so far.
    pub written: u64,
    limit: u64,
    /// Reused encode buffer — one capture records every frame on the
    /// air, so per-record allocations add up.
    scratch: Vec<u8>,
}

impl CaptureWriter {
    /// Create a capture file, keeping at most `limit` frames (0 = no
    /// limit). The cap guards against filling a disk with a long drive's
    /// TCP stream.
    pub fn create(path: &Path, limit: u64) -> io::Result<CaptureWriter> {
        let mut out = BufWriter::new(File::create(path)?);
        out.write_all(MAGIC)?;
        Ok(CaptureWriter {
            out,
            written: 0,
            limit: if limit == 0 { u64::MAX } else { limit },
            scratch: Vec::with_capacity(64),
        })
    }

    /// Append a frame (silently ignored past the limit).
    pub fn record(&mut self, at: SimTime, direction: Direction, frame: &Frame) -> io::Result<()> {
        if self.written >= self.limit {
            return Ok(());
        }
        let body = &mut self.scratch;
        encode_into(frame, body);
        self.out.write_all(&at.as_micros().to_be_bytes())?;
        self.out.write_all(&[match direction {
            Direction::ToClient => 0u8,
            Direction::ToAp => 1u8,
        }])?;
        self.out
            .write_all(&u32::try_from(body.len()).unwrap().to_be_bytes())?;
        self.out.write_all(body)?;
        self.written += 1;
        Ok(())
    }

    /// Flush and close.
    pub fn finish(mut self) -> io::Result<u64> {
        self.out.flush()?;
        Ok(self.written)
    }
}

/// Errors reading a capture file.
#[derive(Debug)]
pub enum CaptureError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a capture file / wrong version.
    BadMagic,
    /// A record failed to decode.
    Codec(CodecError),
    /// A record had an invalid direction byte.
    BadDirection(u8),
}

impl From<io::Error> for CaptureError {
    fn from(e: io::Error) -> Self {
        CaptureError::Io(e)
    }
}

impl std::fmt::Display for CaptureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CaptureError::Io(e) => write!(f, "io: {e}"),
            CaptureError::BadMagic => write!(f, "not a spider capture file"),
            CaptureError::Codec(e) => write!(f, "frame decode: {e}"),
            CaptureError::BadDirection(d) => write!(f, "bad direction byte {d}"),
        }
    }
}

impl std::error::Error for CaptureError {}

/// Read an entire capture file.
pub fn read_capture(path: &Path) -> Result<Vec<CaptureRecord>, CaptureError> {
    let mut input = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 5];
    input.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(CaptureError::BadMagic);
    }
    let mut records = Vec::new();
    loop {
        let mut ts = [0u8; 8];
        match input.read_exact(&mut ts) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => break,
            Err(e) => return Err(e.into()),
        }
        let mut dir = [0u8; 1];
        input.read_exact(&mut dir)?;
        let direction = match dir[0] {
            0 => Direction::ToClient,
            1 => Direction::ToAp,
            d => return Err(CaptureError::BadDirection(d)),
        };
        let mut len = [0u8; 4];
        input.read_exact(&mut len)?;
        let mut body = vec![0u8; u32::from_be_bytes(len) as usize];
        input.read_exact(&mut body)?;
        let frame = decode(&body).map_err(CaptureError::Codec)?;
        records.push(CaptureRecord {
            at: SimTime::from_micros(u64::from_be_bytes(ts)),
            direction,
            frame,
        });
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spider_wire::{FrameBody, MacAddr};

    fn frame(i: u64) -> Frame {
        Frame {
            src: MacAddr::from_id(i),
            dst: MacAddr::from_id(i + 1),
            bssid: MacAddr::from_id(i + 1),
            body: FrameBody::AuthRequest,
        }
    }

    #[test]
    fn roundtrip() {
        let path = std::env::temp_dir().join("spider-capture-test.spdr");
        let mut w = CaptureWriter::create(&path, 0).unwrap();
        for i in 0..10u64 {
            let d = if i % 2 == 0 {
                Direction::ToClient
            } else {
                Direction::ToAp
            };
            w.record(SimTime::from_millis(i), d, &frame(i)).unwrap();
        }
        assert_eq!(w.finish().unwrap(), 10);
        let records = read_capture(&path).unwrap();
        assert_eq!(records.len(), 10);
        assert_eq!(records[3].at, SimTime::from_millis(3));
        assert_eq!(records[3].direction, Direction::ToAp);
        assert_eq!(records[3].frame, frame(3));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn limit_caps_frames() {
        let path = std::env::temp_dir().join("spider-capture-limit.spdr");
        let mut w = CaptureWriter::create(&path, 3).unwrap();
        for i in 0..10u64 {
            w.record(SimTime::from_millis(i), Direction::ToAp, &frame(i))
                .unwrap();
        }
        assert_eq!(w.finish().unwrap(), 3);
        assert_eq!(read_capture(&path).unwrap().len(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_magic_is_rejected() {
        let path = std::env::temp_dir().join("spider-capture-bad.spdr");
        std::fs::write(&path, b"NOPE\x01rest").unwrap();
        assert!(matches!(read_capture(&path), Err(CaptureError::BadMagic)));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_record_is_an_io_error() {
        let path = std::env::temp_dir().join("spider-capture-trunc.spdr");
        let mut w = CaptureWriter::create(&path, 0).unwrap();
        w.record(SimTime::ZERO, Direction::ToAp, &frame(1)).unwrap();
        w.finish().unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.truncate(bytes.len() - 3);
        std::fs::write(&path, bytes).unwrap();
        assert!(matches!(read_capture(&path), Err(CaptureError::Io(_))));
        std::fs::remove_file(&path).ok();
    }
}
