//! Scenario builders for the paper's experimental setups.

use crate::world::WorldConfig;
use spider_mobility::deployment::RoadsideParams;
use spider_mobility::{ChannelMix, Deployment, MobilityModel, Position};
use spider_radio::LossModel;
use spider_simcore::{SimDuration, SimRng};
use spider_wire::Channel;

/// The shape of the drive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteKind {
    /// One straight pass: every AP is seen exactly once (no caching or
    /// history benefits — the "areas they do not normally drive" case of
    /// §2.1.2).
    Straight,
    /// A repeated downtown loop — the paper's actual methodology ("the
    /// mobile node following the same route multiple times", §4.1),
    /// which is what makes DHCP caches and join-history utilities pay.
    Loop,
}

/// Parameters for the outdoor vehicular scenarios.
#[derive(Debug, Clone)]
pub struct ScenarioParams {
    /// Vehicle speed in m/s (the paper's town drives average ~10 m/s).
    pub speed_mps: f64,
    /// Run length (paper: 30–60 minutes per experiment).
    pub duration: SimDuration,
    /// Root seed.
    pub seed: u64,
    /// Deployment seed override. `None` derives the deployment from
    /// [`seed`](Self::seed) (each seed gets its own town). `Some(d)`
    /// pins the deployment to `d` so a fan of seeds shares one physical
    /// town and differs only in world RNG (beacon phases, DHCP draws,
    /// loss) — the shape [`World::rebase_seed`](crate::World::rebase_seed)
    /// can serve from a single constructed world.
    pub deploy_seed: Option<u64>,
    /// Open-AP density per km of road.
    pub density_per_km: f64,
    /// Channel mix of the deployment.
    pub mix: ChannelMix,
    /// DHCP β bounds in seconds.
    pub dhcp_beta: (f64, f64),
    /// Backhaul bandwidth range in bytes/second.
    pub backhaul_bps: (f64, f64),
    /// Fraction of APs whose DHCP never answers (open-but-broken).
    pub dead_dhcp_fraction: f64,
    /// Route shape.
    pub route: RouteKind,
    /// Loop dimensions in metres (width, height) for [`RouteKind::Loop`].
    pub loop_size_m: (f64, f64),
}

impl Default for ScenarioParams {
    fn default() -> Self {
        ScenarioParams {
            speed_mps: 10.0,
            duration: SimDuration::from_secs(1_800),
            seed: 1,
            deploy_seed: None,
            density_per_km: 15.0,
            mix: ChannelMix::paper_town(),
            // AP DHCP response times: the paper's model uses
            // beta in [0.5s, 5-10s]; consumer APs are slow.
            dhcp_beta: (0.3, 5.0),
            // 2-10 Mb/s residential backhauls: the paper's instantaneous
            // bandwidth while connected reached 300-1000 KB/s (Fig. 13).
            backhaul_bps: (250_000.0, 1_250_000.0),
            dead_dhcp_fraction: 0.0,
            route: RouteKind::Loop,
            // ~5 km perimeter: a 30-minute drive at 10 m/s covers ~3.6
            // laps, re-encountering each AP several times.
            loop_size_m: (2_000.0, 500.0),
        }
    }
}

/// The paper's small-town drive: Poisson roadside APs in the measured
/// channel mix along a repeated downtown loop (or a straight pass).
pub fn town_scenario(params: &ScenarioParams) -> WorldConfig {
    let mut rng = SimRng::new(params.deploy_seed.unwrap_or(params.seed)).stream("deployment");
    let roadside = |length| RoadsideParams {
        road_length_m: length,
        density_per_km: params.density_per_km,
        max_offset_m: 30.0,
        mix: params.mix.clone(),
        backhaul_bps: params.backhaul_bps,
        backhaul_latency_s: (0.010, 0.040),
        dhcp_beta: params.dhcp_beta,
        dead_dhcp_fraction: params.dead_dhcp_fraction,
    };
    let (mobility, deployment) = match params.route {
        RouteKind::Straight => {
            let road_length = params.speed_mps * params.duration.as_secs_f64() + 500.0;
            (
                MobilityModel::straight_road(params.speed_mps),
                Deployment::poisson_roadside(&mut rng, &roadside(road_length)),
            )
        }
        RouteKind::Loop => {
            let (w, h) = params.loop_size_m;
            (
                MobilityModel::rectangular_loop(w, h, params.speed_mps),
                Deployment::poisson_loop(&mut rng, w, h, &roadside(0.0)),
            )
        }
    };
    let mut cfg = WorldConfig::new(mobility, deployment, params.duration, params.seed);
    // Outdoor vehicular links: reliable core, lossy cell edge.
    cfg.loss = LossModel::DistanceRamp {
        base: 0.05,
        edge_start: 0.6,
    };
    cfg
}

/// The Cambridge/Boston external-validation drive: denser APs, the
/// Cabernet channel mix (39 % on channel 6).
pub fn boston_scenario(params: &ScenarioParams) -> WorldConfig {
    let mut p = params.clone();
    p.mix = ChannelMix::boston();
    p.density_per_km = params.density_per_km * 1.8;
    town_scenario(&p)
}

/// The indoor static testbed of §2.2.2: a stationary client `distance_m`
/// from APs on the given channels, near-lossless, fast DHCP servers.
pub fn indoor_scenario(
    channels: &[Channel],
    distance_m: f64,
    backhaul_bps: f64,
    duration: SimDuration,
    seed: u64,
) -> WorldConfig {
    let aps = channels
        .iter()
        .enumerate()
        .map(|(i, &ch)| (Position::new(distance_m, i as f64), ch))
        .collect();
    let deployment = Deployment::lab(aps, backhaul_bps);
    let mut cfg = WorldConfig::new(
        MobilityModel::Static(Position::ORIGIN),
        deployment,
        duration,
        seed,
    );
    cfg.loss = LossModel::Bernoulli { h: 0.01 };
    cfg
}

/// The controlled two-AP micro-benchmark of Fig. 10: both APs at a few
/// metres, identical shaped backhaul, DHCP answered promptly (lab LAN).
pub fn lab_scenario(
    ap_channels: &[Channel],
    backhaul_bps: f64,
    duration: SimDuration,
    seed: u64,
) -> WorldConfig {
    indoor_scenario(ap_channels, 5.0, backhaul_bps, duration, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn town_scenario_covers_the_drive() {
        let params = ScenarioParams {
            duration: SimDuration::from_secs(600),
            ..Default::default()
        };
        let cfg = town_scenario(&params);
        // Road long enough for the drive; density ~10/km over 6.5km.
        assert!(cfg.deployment.len() > 30, "{} APs", cfg.deployment.len());
        assert_eq!(cfg.duration, SimDuration::from_secs(600));
    }

    #[test]
    fn boston_is_denser() {
        let params = ScenarioParams {
            duration: SimDuration::from_secs(600),
            ..Default::default()
        };
        let town = town_scenario(&params);
        let boston = boston_scenario(&params);
        assert!(boston.deployment.len() > town.deployment.len());
    }

    #[test]
    fn scenarios_are_deterministic() {
        let params = ScenarioParams::default();
        let a = town_scenario(&params);
        let b = town_scenario(&params);
        assert_eq!(a.deployment.len(), b.deployment.len());
        for (x, y) in a.deployment.sites.iter().zip(&b.deployment.sites) {
            assert_eq!(x.position, y.position);
            assert_eq!(x.channel, y.channel);
        }
    }

    #[test]
    fn pinned_deploy_seed_shares_the_town_across_seeds() {
        let mk = |seed| {
            town_scenario(&ScenarioParams {
                seed,
                deploy_seed: Some(1),
                duration: SimDuration::from_secs(600),
                ..Default::default()
            })
        };
        let (a, b) = (mk(1), mk(2));
        assert_eq!(a.deployment.len(), b.deployment.len());
        for (x, y) in a.deployment.sites.iter().zip(&b.deployment.sites) {
            assert_eq!(x.position, y.position);
            assert_eq!(x.channel, y.channel);
        }
        // World seeds still differ: that is the only divergence.
        assert_ne!(a.seed, b.seed);
    }

    #[test]
    fn lab_scenario_is_static_and_clean() {
        let cfg = lab_scenario(
            &[Channel::CH1, Channel::CH1],
            250_000.0,
            SimDuration::from_secs(60),
            7,
        );
        assert_eq!(cfg.deployment.len(), 2);
        assert!(matches!(cfg.mobility, MobilityModel::Static(_)));
        assert!(matches!(cfg.loss, LossModel::Bernoulli { h } if h < 0.05));
    }
}
