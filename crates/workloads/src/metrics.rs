//! Per-run evaluation metrics.
//!
//! The paper's four key metrics (§4.3): average throughput, average
//! connectivity (fraction of one-second windows with any data),
//! disruption-length distribution, and instantaneous bandwidth. Plus the
//! join-timing log (Figs. 5/6/14/15, Table 3) and switch counts
//! (Table 1).

use crate::faults::FaultStats;
use spider_mac80211::JoinLog;
use spider_simcore::{Cdf, IntervalReport, Json, SimDuration};
use std::fmt;

/// The outcome of one simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Driver label.
    pub label: String,
    /// Simulated duration.
    pub duration: SimDuration,
    /// Total application bytes delivered.
    pub bytes: u64,
    /// Average throughput in bytes/second over the whole run.
    pub avg_throughput_bps: f64,
    /// Fraction of 1-second windows in which data arrived.
    pub connectivity: f64,
    /// Per-window throughput samples (bytes/s) for windows with data —
    /// Fig. 13's instantaneous bandwidth.
    pub instantaneous_bps: Cdf,
    /// Connection / disruption intervals of the driver's own
    /// connectivity signal (Figs. 11–12).
    pub intervals: IntervalReport,
    /// Join timing log (Figs. 5, 6, 14, 15; Table 3).
    pub join_log: JoinLog,
    /// Hardware channel switches performed by the radio.
    pub switches: u64,
    /// Number of APs encountered (came within range) during the run.
    pub aps_encountered: usize,
    /// Server-side TCP retransmission timeouts across all flows.
    pub tcp_timeouts: u64,
    /// Server-side TCP retransmissions across all flows.
    pub tcp_retransmits: u64,
    /// Fault-attribution counters (all zero when the run's
    /// [`FaultPlan`](crate::faults::FaultPlan) is empty).
    pub faults: FaultStats,
    /// Discrete events processed by the engine during the run — the
    /// numerator of the benchmark harness's events/sec figure.
    pub events: u64,
}

impl RunResult {
    /// Average throughput in KB/s, the unit of Tables 2 and 4.
    pub fn throughput_kbs(&self) -> f64 {
        self.avg_throughput_bps / 1_000.0
    }

    /// Connectivity as a percentage, the unit of Tables 2 and 4.
    pub fn connectivity_pct(&self) -> f64 {
        self.connectivity * 100.0
    }

    /// Connection-duration CDF in seconds (Fig. 11).
    pub fn connection_cdf(&self) -> Cdf {
        self.intervals.on_cdf()
    }

    /// Disruption-length CDF in seconds (Fig. 12).
    pub fn disruption_cdf(&self) -> Cdf {
        self.intervals.off_cdf()
    }

    /// Serialize the run for campaign artifacts: every scalar the SLO
    /// table can judge, the fault attribution block, and join/interval
    /// summary counts. Floats use shortest-round-trip emission, so two
    /// bit-identical runs serialize to byte-identical JSON — artifact
    /// diffing doubles as a determinism check.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("label", Json::str(self.label.clone())),
            ("duration_us", Json::UInt(self.duration.as_micros())),
            ("bytes", Json::UInt(self.bytes)),
            ("avg_throughput_bps", Json::Num(self.avg_throughput_bps)),
            ("connectivity", Json::Num(self.connectivity)),
            ("switches", Json::UInt(self.switches)),
            ("aps_encountered", Json::UInt(self.aps_encountered as u64)),
            ("tcp_timeouts", Json::UInt(self.tcp_timeouts)),
            ("tcp_retransmits", Json::UInt(self.tcp_retransmits)),
            ("events", Json::UInt(self.events)),
            ("joins", Json::UInt(self.join_log.join.len() as u64)),
            ("join_failures", Json::UInt(self.join_log.join_failures)),
            (
                "disruptions",
                Json::UInt(self.intervals.off_durations.len() as u64),
            ),
            ("faults", self.faults.to_json()),
        ])
    }
}

impl fmt::Display for RunResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {:.1} KB/s, {:.1}% connectivity, {} joins, {} switches",
            self.label,
            self.throughput_kbs(),
            self.connectivity_pct(),
            self.join_log.join.len(),
            self.switches,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spider_simcore::{IntervalTracker, SimTime};

    fn result() -> RunResult {
        let mut t = IntervalTracker::new(SimTime::ZERO, false);
        t.set(SimTime::from_secs(10), true);
        t.set(SimTime::from_secs(40), false);
        RunResult {
            label: "test".into(),
            duration: SimDuration::from_secs(100),
            bytes: 1_000_000,
            avg_throughput_bps: 10_000.0,
            connectivity: 0.30,
            instantaneous_bps: Cdf::from_samples(vec![5_000.0, 20_000.0]),
            intervals: t.finish(SimTime::from_secs(100)),
            join_log: JoinLog::new(),
            switches: 12,
            aps_encountered: 5,
            tcp_timeouts: 0,
            tcp_retransmits: 0,
            faults: FaultStats::default(),
            events: 0,
        }
    }

    #[test]
    fn unit_conversions() {
        let r = result();
        assert_eq!(r.throughput_kbs(), 10.0);
        assert_eq!(r.connectivity_pct(), 30.0);
    }

    #[test]
    fn interval_cdfs() {
        let r = result();
        let mut on = r.connection_cdf();
        assert_eq!(on.len(), 1);
        assert_eq!(on.median(), 30.0);
        let mut off = r.disruption_cdf();
        assert_eq!(off.len(), 2);
        assert!((off.quantile(1.0) - 60.0).abs() < 1e-9);
    }

    #[test]
    fn display_is_informative() {
        let s = result().to_string();
        assert!(s.contains("10.0 KB/s"));
        assert!(s.contains("30.0%"));
    }
}
