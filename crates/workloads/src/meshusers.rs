//! Synthetic mesh-user demand traces (§4.7).
//!
//! The paper's usability study collected one day of TCP flows from 161
//! users of a 25-node downtown mesh (128,587 connections, 68 % HTTP) and
//! compared their flow-duration and inter-connection-gap distributions
//! against what Spider delivers (Figs. 16–17). The raw trace is not
//! public; this generator produces a synthetic trace with the same CDF
//! shape class — a log-normal body (most web flows are seconds long)
//! with a Pareto tail (long downloads / streaming), and log-normal
//! inter-connection gaps — calibrated to the figures' quantiles:
//! the majority of flows complete within ~10 s and nearly all within
//! ~100 s; inter-connection gaps concentrate below ~60 s with a tail to
//! several minutes.

use spider_simcore::{Cdf, SimRng};

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct MeshUserParams {
    /// Number of flows to synthesise.
    pub flows: usize,
    /// Log-normal μ for flow durations (ln seconds).
    pub duration_mu: f64,
    /// Log-normal σ for flow durations.
    pub duration_sigma: f64,
    /// Fraction of flows drawn from the heavy Pareto tail.
    pub heavy_fraction: f64,
    /// Pareto scale (seconds) for the tail.
    pub pareto_scale: f64,
    /// Pareto shape for the tail.
    pub pareto_shape: f64,
    /// Log-normal μ for inter-connection gaps (ln seconds).
    pub gap_mu: f64,
    /// Log-normal σ for gaps.
    pub gap_sigma: f64,
}

impl Default for MeshUserParams {
    fn default() -> Self {
        MeshUserParams {
            flows: 10_000,
            // Median ~3.5s: short interactive web flows dominate.
            duration_mu: 1.25,
            duration_sigma: 1.1,
            heavy_fraction: 0.08,
            pareto_scale: 20.0,
            pareto_shape: 1.3,
            // Median gap ~15s, tail to minutes.
            gap_mu: 2.7,
            gap_sigma: 1.2,
        }
    }
}

/// A synthetic day of mesh-user activity.
#[derive(Debug, Clone)]
pub struct MeshUserTrace {
    /// TCP flow durations in seconds (Fig. 16's "users connection
    /// duration").
    pub flow_durations: Cdf,
    /// Gaps between consecutive connections in seconds (Fig. 17's "user
    /// inter-connection").
    pub inter_connection_gaps: Cdf,
}

/// Generate a trace.
pub fn generate(params: &MeshUserParams, seed: u64) -> MeshUserTrace {
    let mut rng = SimRng::new(seed).stream("meshusers");
    let mut durations = Vec::with_capacity(params.flows);
    let mut gaps = Vec::with_capacity(params.flows);
    for _ in 0..params.flows {
        let d = if rng.chance(params.heavy_fraction) {
            rng.pareto(params.pareto_scale, params.pareto_shape)
        } else {
            rng.log_normal(params.duration_mu, params.duration_sigma)
        };
        // Cap at a day: the trace covered 24h.
        durations.push(d.min(86_400.0));
        let g = rng.log_normal(params.gap_mu, params.gap_sigma);
        gaps.push(g.min(3_600.0));
    }
    MeshUserTrace {
        flow_durations: Cdf::from_samples(durations),
        inter_connection_gaps: Cdf::from_samples(gaps),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_match_figure_shapes() {
        let mut trace = generate(&MeshUserParams::default(), 42);
        // Fig. 16: the bulk of user TCP flows are short.
        let median = trace.flow_durations.median();
        assert!((1.0..10.0).contains(&median), "median flow {median}s");
        let p90 = trace.flow_durations.quantile(0.9);
        assert!(p90 < 120.0, "90th pct flow {p90}s");
        // A real heavy tail exists.
        let p999 = trace.flow_durations.quantile(0.999);
        assert!(p999 > 60.0, "99.9th pct flow {p999}s");
        // Fig. 17: gaps concentrate under a minute.
        let gap_med = trace.inter_connection_gaps.median();
        assert!((5.0..60.0).contains(&gap_med), "median gap {gap_med}s");
        assert!(trace.inter_connection_gaps.quantile(0.95) < 600.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = generate(&MeshUserParams::default(), 7);
        let mut b = generate(&MeshUserParams::default(), 7);
        assert_eq!(a.flow_durations.median(), b.flow_durations.median());
        assert_eq!(
            a.inter_connection_gaps.quantile(0.9),
            b.inter_connection_gaps.quantile(0.9)
        );
        let mut c = generate(&MeshUserParams::default(), 8);
        assert_ne!(a.flow_durations.median(), c.flow_durations.median());
    }

    #[test]
    fn flow_count_respected() {
        let trace = generate(
            &MeshUserParams {
                flows: 123,
                ..Default::default()
            },
            1,
        );
        assert_eq!(trace.flow_durations.len(), 123);
        assert_eq!(trace.inter_connection_gaps.len(), 123);
    }

    #[test]
    fn durations_are_positive_and_capped() {
        let mut trace = generate(&MeshUserParams::default(), 3);
        assert!(trace.flow_durations.quantile(0.0) > 0.0);
        assert!(trace.flow_durations.quantile(1.0) <= 86_400.0);
        assert!(trace.inter_connection_gaps.quantile(1.0) <= 3_600.0);
    }
}
