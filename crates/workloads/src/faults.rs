//! Fault injection for the vehicular world.
//!
//! Real open-AP deployments fail in ways distance-based loss cannot
//! model: APs power-cycle, forward nothing while still beaconing, run
//! out of DHCP addresses, or filter end-to-end ICMP. Spider's recovery
//! machinery (the §3.2.2 ping monitor, the gateway-ping fallback, lease
//! caching and re-scan) exists for exactly these conditions, so the
//! world needs a way to produce them on demand.
//!
//! A [`FaultPlan`] is a set of [`FaultEpisode`]s — per-AP (or global)
//! time windows during which one [`FaultKind`] is active. Plans are
//! either scripted (tests, examples) or generated stochastically from a
//! seed and a [`FaultProfile`] ([`FaultPlan::seeded`]), so a faulty run
//! remains a pure function of `(WorldConfig, FaultPlan)` like everything
//! else in the simulator. The world consults the plan on every AP,
//! DHCP, and medium interaction and attributes the damage in
//! [`FaultStats`].

use spider_simcore::{Json, SimDuration, SimRng, SimTime};

/// One class of injected failure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Full AP power loss: no beacons, no responses, no reception.
    /// When the episode ends the AP reboots with empty association
    /// state (clients must re-join from scratch).
    Blackout,
    /// "Zombie" AP: beacons, association and DHCP all work, but the AP
    /// forwards nothing — the exact failure the end-to-end ping monitor
    /// (§3.2.2) exists to catch. The local gateway stops answering
    /// pings too, so even the gateway fallback sees a dead link.
    Zombie,
    /// The DHCP server stops answering (common "AP up, DHCP wedged"
    /// failure; joins stall in the DHCP phase and time out).
    DhcpSilence,
    /// DHCP address-pool exhaustion: DISCOVER is ignored, REQUEST is
    /// answered with a NAK — exercising lease-cache invalidation.
    DhcpExhausted,
    /// The gateway filters end-to-end ICMP: pings to the wired sink are
    /// black-holed while the gateway itself still answers, forcing the
    /// client onto the gateway-ping fallback (§3.2.2).
    IcmpBlackhole,
    /// A burst of extra channel loss (interference episode) layered on
    /// top of the distance-based [`spider_radio::LossModel`].
    LossBurst {
        /// Additional independent loss probability in `[0, 1]`.
        extra: f64,
    },
    /// The gateway's ARP mapping is hijacked for the episode:
    /// association and DHCP still succeed (the attacker leaves the
    /// control plane alone), but the client's upstream unicast frames
    /// are delivered to a black-hole MAC. Link state looks perfect —
    /// only the end-to-end ping monitor (§3.2.2) sees the dead data
    /// plane, and recovery requires re-resolving the gateway.
    ArpPoison,
    /// A captive portal: DHCP answers normally and the portal
    /// impersonates the gateway (gateway pings are answered), but
    /// end-to-end traffic is hijacked until the client "authenticates"
    /// — which scripted clients never do. This defeats the gateway-ping
    /// fallback exactly where it lies: the link looks alive while zero
    /// payload gets through.
    CaptivePortal,
    /// Directional extra loss on the medium. Uplink loss starves the
    /// AP of ACKs and pings; downlink loss fades replies and payload —
    /// different recovery problems that the symmetric [`LossBurst`]
    /// cannot distinguish.
    ///
    /// [`LossBurst`]: FaultKind::LossBurst
    AsymmetricLoss {
        /// Extra independent loss probability on client → AP frames.
        up: f64,
        /// Extra independent loss probability on AP → client frames.
        down: f64,
    },
}

/// One fault episode: a kind, a target, and a time window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEpisode {
    /// Target AP index, or `None` for every AP (area-wide event).
    pub ap: Option<usize>,
    /// What fails.
    pub kind: FaultKind,
    /// Episode start (inclusive).
    pub start: SimTime,
    /// Episode end (exclusive).
    pub end: SimTime,
}

impl FaultKind {
    /// Stable artifact label for this class (the JSON `kind` field and
    /// the SLO table's row key).
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::Blackout => "blackout",
            FaultKind::Zombie => "zombie",
            FaultKind::DhcpSilence => "dhcp-silence",
            FaultKind::DhcpExhausted => "dhcp-exhausted",
            FaultKind::IcmpBlackhole => "icmp-blackhole",
            FaultKind::LossBurst { .. } => "loss-burst",
            FaultKind::ArpPoison => "arp-poison",
            FaultKind::CaptivePortal => "captive-portal",
            FaultKind::AsymmetricLoss { .. } => "asymmetric-loss",
        }
    }

    /// Serialize to the artifact JSON form.
    pub fn to_json(&self) -> Json {
        match self {
            FaultKind::LossBurst { extra } => Json::obj([
                ("kind", Json::str(self.label())),
                ("extra", Json::Num(*extra)),
            ]),
            FaultKind::AsymmetricLoss { up, down } => Json::obj([
                ("kind", Json::str(self.label())),
                ("up", Json::Num(*up)),
                ("down", Json::Num(*down)),
            ]),
            _ => Json::obj([("kind", Json::str(self.label()))]),
        }
    }

    /// Parse the artifact JSON form back. `None` on unknown labels or
    /// missing fields — replay must fail loudly, not guess.
    pub fn from_json(v: &Json) -> Option<FaultKind> {
        match v.get("kind")?.as_str()? {
            "blackout" => Some(FaultKind::Blackout),
            "zombie" => Some(FaultKind::Zombie),
            "dhcp-silence" => Some(FaultKind::DhcpSilence),
            "dhcp-exhausted" => Some(FaultKind::DhcpExhausted),
            "icmp-blackhole" => Some(FaultKind::IcmpBlackhole),
            "loss-burst" => Some(FaultKind::LossBurst {
                extra: v.get("extra")?.as_f64()?,
            }),
            "arp-poison" => Some(FaultKind::ArpPoison),
            "captive-portal" => Some(FaultKind::CaptivePortal),
            "asymmetric-loss" => Some(FaultKind::AsymmetricLoss {
                up: v.get("up")?.as_f64()?,
                down: v.get("down")?.as_f64()?,
            }),
            _ => None,
        }
    }
}

impl FaultEpisode {
    /// Does this episode cover `(now, ap)`?
    fn applies(&self, now: SimTime, ap: usize) -> bool {
        self.ap.map(|a| a == ap).unwrap_or(true) && self.start <= now && now < self.end
    }

    /// Serialize to the artifact JSON form. Times are integer
    /// microseconds, so replay is exact by construction.
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![(
            "ap".to_string(),
            match self.ap {
                Some(i) => Json::UInt(i as u64),
                None => Json::Null,
            },
        )];
        if let Json::Obj(kind_pairs) = self.kind.to_json() {
            pairs.extend(kind_pairs);
        }
        pairs.push(("start_us".to_string(), Json::UInt(self.start.as_micros())));
        pairs.push(("end_us".to_string(), Json::UInt(self.end.as_micros())));
        Json::Obj(pairs)
    }

    /// Parse the artifact JSON form back.
    pub fn from_json(v: &Json) -> Option<FaultEpisode> {
        let ap = match v.get("ap")? {
            Json::Null => None,
            j => Some(j.as_u64()? as usize),
        };
        Some(FaultEpisode {
            ap,
            kind: FaultKind::from_json(v)?,
            start: SimTime::from_micros(v.get("start_us")?.as_u64()?),
            end: SimTime::from_micros(v.get("end_us")?.as_u64()?),
        })
    }
}

/// Knobs for stochastic fault generation: per-AP incidence rates
/// (events per simulated hour) and episode-duration bounds (seconds,
/// uniform). Rates of zero disable a class.
#[derive(Debug, Clone)]
pub struct FaultProfile {
    /// Blackout events per AP-hour.
    pub blackout_per_hour: f64,
    /// Blackout duration bounds in seconds.
    pub blackout_secs: (f64, f64),
    /// Zombie episodes per AP-hour.
    pub zombie_per_hour: f64,
    /// Zombie duration bounds in seconds.
    pub zombie_secs: (f64, f64),
    /// DHCP-silence episodes per AP-hour.
    pub dhcp_silence_per_hour: f64,
    /// DHCP-silence duration bounds in seconds.
    pub dhcp_silence_secs: (f64, f64),
    /// Pool-exhaustion episodes per AP-hour.
    pub dhcp_exhausted_per_hour: f64,
    /// Pool-exhaustion duration bounds in seconds.
    pub dhcp_exhausted_secs: (f64, f64),
    /// Fraction of APs whose gateway filters end-to-end ICMP for the
    /// entire run.
    pub icmp_filtered_fraction: f64,
    /// Loss-burst episodes per AP-hour.
    pub loss_burst_per_hour: f64,
    /// Loss-burst duration bounds in seconds.
    pub loss_burst_secs: (f64, f64),
    /// Extra loss probability bounds for a burst.
    pub loss_burst_extra: (f64, f64),
}

impl FaultProfile {
    /// A mild profile: occasional short outages, a few percent of APs
    /// ICMP-filtered. Roughly "a normal day in an open-AP deployment".
    pub fn calm() -> FaultProfile {
        FaultProfile {
            blackout_per_hour: 0.5,
            blackout_secs: (10.0, 60.0),
            zombie_per_hour: 0.5,
            zombie_secs: (20.0, 120.0),
            dhcp_silence_per_hour: 0.5,
            dhcp_silence_secs: (10.0, 60.0),
            dhcp_exhausted_per_hour: 0.25,
            dhcp_exhausted_secs: (30.0, 120.0),
            icmp_filtered_fraction: 0.05,
            loss_burst_per_hour: 1.0,
            loss_burst_secs: (1.0, 10.0),
            loss_burst_extra: (0.05, 0.3),
        }
    }

    /// A hostile profile for chaos testing: frequent long outages,
    /// widespread ICMP filtering, heavy interference bursts.
    pub fn stormy() -> FaultProfile {
        FaultProfile {
            blackout_per_hour: 6.0,
            blackout_secs: (20.0, 180.0),
            zombie_per_hour: 6.0,
            zombie_secs: (30.0, 300.0),
            dhcp_silence_per_hour: 4.0,
            dhcp_silence_secs: (20.0, 120.0),
            dhcp_exhausted_per_hour: 3.0,
            dhcp_exhausted_secs: (30.0, 180.0),
            icmp_filtered_fraction: 0.25,
            loss_burst_per_hour: 10.0,
            loss_burst_secs: (2.0, 20.0),
            loss_burst_extra: (0.2, 0.6),
        }
    }
}

/// A complete fault schedule for one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// All episodes, in no particular order.
    pub episodes: Vec<FaultEpisode>,
}

impl FaultPlan {
    /// No faults (the default).
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// A scripted plan (tests and examples).
    ///
    /// Zero-length windows are dropped at construction: `applies` treats
    /// `start == end` as empty, but an episode kept in the list would
    /// still count toward `episodes` accounting (and the shrinker's
    /// window-narrowing phase can emit such husks). Replay paths parse
    /// with [`FaultPlan::from_json`], which is exact and does not
    /// normalize.
    pub fn scripted(mut episodes: Vec<FaultEpisode>) -> FaultPlan {
        episodes.retain(|e| e.start < e.end);
        FaultPlan { episodes }
    }

    /// Generate a plan stochastically: for each AP and each fault
    /// class, episodes arrive as a Poisson process (exponential
    /// inter-arrivals) at the profile's rate, with uniform durations.
    /// Pure function of `(seed, num_aps, duration, profile)`; the seed
    /// is streamed per class and AP so plans are stable under profile
    /// tweaks to other classes.
    pub fn seeded(
        seed: u64,
        num_aps: usize,
        duration: SimDuration,
        profile: &FaultProfile,
    ) -> FaultPlan {
        let root = SimRng::new(seed);
        let horizon = duration.as_secs_f64();
        let mut episodes = Vec::new();
        let classes: [(&str, f64, (f64, f64)); 5] = [
            ("blackout", profile.blackout_per_hour, profile.blackout_secs),
            ("zombie", profile.zombie_per_hour, profile.zombie_secs),
            (
                "dhcp-silence",
                profile.dhcp_silence_per_hour,
                profile.dhcp_silence_secs,
            ),
            (
                "dhcp-exhausted",
                profile.dhcp_exhausted_per_hour,
                profile.dhcp_exhausted_secs,
            ),
            (
                "loss-burst",
                profile.loss_burst_per_hour,
                profile.loss_burst_secs,
            ),
        ];
        for ap in 0..num_aps {
            for (label, per_hour, (lo, hi)) in classes {
                if per_hour <= 0.0 {
                    continue;
                }
                // The label is interpolated from a fixed literal table
                // directly above, so the full set ("fault-assoc-flap",
                // "fault-dhcp-outage", ...) is still auditable; rewriting
                // this as per-class literal calls would change nothing
                // semantically but re-deriving the streams differently
                // would break byte-identity of every recorded corpus.
                // lint:allow(stream-label)
                let mut rng = root
                    .stream(&format!("fault-{label}"))
                    .stream_indexed("ap", ap as u64);
                let mean_gap = 3600.0 / per_hour;
                let mut t = rng.exponential(mean_gap);
                while t < horizon {
                    let dur = rng.uniform_in(lo, hi);
                    let kind = match label {
                        "blackout" => FaultKind::Blackout,
                        "zombie" => FaultKind::Zombie,
                        "dhcp-silence" => FaultKind::DhcpSilence,
                        "dhcp-exhausted" => FaultKind::DhcpExhausted,
                        _ => FaultKind::LossBurst {
                            extra: rng
                                .uniform_in(profile.loss_burst_extra.0, profile.loss_burst_extra.1),
                        },
                    };
                    episodes.push(FaultEpisode {
                        ap: Some(ap),
                        kind,
                        start: SimTime::ZERO + SimDuration::from_secs_f64(t),
                        end: SimTime::ZERO + SimDuration::from_secs_f64((t + dur).min(horizon)),
                    });
                    t += dur + rng.exponential(mean_gap);
                }
            }
            // ICMP filtering is a property of the gateway, not an
            // episode: a filtered AP filters for the whole run.
            let mut rng = root.stream("fault-icmp").stream_indexed("ap", ap as u64);
            if rng.chance(profile.icmp_filtered_fraction) {
                episodes.push(FaultEpisode {
                    ap: Some(ap),
                    kind: FaultKind::IcmpBlackhole,
                    start: SimTime::ZERO,
                    end: SimTime::ZERO + duration,
                });
            }
        }
        FaultPlan { episodes }
    }

    /// True if the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.episodes.is_empty()
    }

    fn active(&self, now: SimTime, ap: usize, pred: impl Fn(FaultKind) -> bool) -> bool {
        self.episodes
            .iter()
            .any(|e| pred(e.kind) && e.applies(now, ap))
    }

    /// Is `ap` fully blacked out at `now`?
    pub fn blackout(&self, now: SimTime, ap: usize) -> bool {
        self.active(now, ap, |k| k == FaultKind::Blackout)
    }

    /// Is `ap` a zombie (associates but forwards nothing) at `now`?
    pub fn zombie(&self, now: SimTime, ap: usize) -> bool {
        self.active(now, ap, |k| k == FaultKind::Zombie)
    }

    /// Is `ap`'s DHCP server silent at `now`?
    pub fn dhcp_silent(&self, now: SimTime, ap: usize) -> bool {
        self.active(now, ap, |k| k == FaultKind::DhcpSilence)
    }

    /// Is `ap`'s DHCP pool exhausted at `now`?
    pub fn dhcp_exhausted(&self, now: SimTime, ap: usize) -> bool {
        self.active(now, ap, |k| k == FaultKind::DhcpExhausted)
    }

    /// Does `ap`'s gateway filter end-to-end ICMP at `now`?
    pub fn icmp_filtered(&self, now: SimTime, ap: usize) -> bool {
        self.active(now, ap, |k| k == FaultKind::IcmpBlackhole)
    }

    /// Is `ap`'s gateway ARP mapping hijacked at `now`?
    pub fn arp_poisoned(&self, now: SimTime, ap: usize) -> bool {
        self.active(now, ap, |k| k == FaultKind::ArpPoison)
    }

    /// Is `ap` fronted by a captive portal at `now`?
    pub fn captive_portal(&self, now: SimTime, ap: usize) -> bool {
        self.active(now, ap, |k| k == FaultKind::CaptivePortal)
    }

    /// Is any directional-loss episode active on `ap` at `now`? The
    /// attribution gate for the directional drop counters.
    pub fn asym_active(&self, now: SimTime, ap: usize) -> bool {
        self.active(now, ap, |k| matches!(k, FaultKind::AsymmetricLoss { .. }))
    }

    /// Combined extra loss probability on `ap`'s link at `now`
    /// (independent bursts compose: `1 - Π(1 - extra_i)`). Symmetric
    /// classes only; the world's transmit paths use the directional
    /// [`FaultPlan::extra_loss_up`]/[`FaultPlan::extra_loss_down`],
    /// which fold [`FaultKind::AsymmetricLoss`] in as well.
    pub fn extra_loss(&self, now: SimTime, ap: usize) -> f64 {
        extra_loss_dir(&self.episodes, now, ap, None)
    }

    /// Combined extra loss on client → AP frames at `now` (symmetric
    /// bursts plus the `up` leg of directional episodes).
    pub fn extra_loss_up(&self, now: SimTime, ap: usize) -> f64 {
        extra_loss_dir(&self.episodes, now, ap, Some(Direction::Up))
    }

    /// Combined extra loss on AP → client frames at `now` (symmetric
    /// bursts plus the `down` leg of directional episodes).
    pub fn extra_loss_down(&self, now: SimTime, ap: usize) -> f64 {
        extra_loss_dir(&self.episodes, now, ap, Some(Direction::Down))
    }

    /// If a connectivity-killing (data-plane) fault is active on `ap`
    /// at `now`, the start time of the earliest covering episode —
    /// the reference point for time-to-detect measurement.
    pub fn data_fault_onset(&self, now: SimTime, ap: usize) -> Option<SimTime> {
        self.data_fault_at(now, ap).map(|(start, _)| start)
    }

    /// Like [`FaultPlan::data_fault_onset`], but also naming the fault
    /// class of the earliest covering episode — the attribution key for
    /// per-class SLO budgets. Ties on `start` break toward the earlier
    /// episode in plan order, which is stable for a given plan.
    pub fn data_fault_at(&self, now: SimTime, ap: usize) -> Option<(SimTime, FaultKind)> {
        data_fault_at(&self.episodes, now, ap)
    }

    /// Earliest instant at which this plan's observable behaviour can
    /// differ from `other`'s, or `None` if the plans are identical.
    ///
    /// This is the checkpoint boundary for prefix-sharing (DESIGN.md
    /// §13): a world advanced under one plan to any time strictly
    /// before the divergence point is bit-identical to the same world
    /// advanced under the other, so a shrink candidate can fork from a
    /// reference checkpoint instead of re-simulating t=0..divergence.
    ///
    /// The bound is conservative (never later than the true divergence,
    /// sometimes earlier). Episodes common to both plans are matched
    /// greedily *in order* — detect-time attribution breaks onset ties
    /// in plan order, so a reordered pair of equal-start episodes must
    /// count as divergent even though the drop pattern is identical.
    /// Of the unmatched leftovers, a pair differing only in `end`
    /// diverges at the earlier `end` (behaviour agrees while both are
    /// active — the window-narrowing shrink phase leans on this) unless
    /// another episode shares the pair's `start` (a reorder among
    /// equal-start episodes can masquerade as an end trim, so the pair
    /// falls back to `start`); any other leftover diverges at its
    /// `start`.
    pub fn first_divergence(&self, other: &FaultPlan) -> Option<SimTime> {
        // Order-preserving greedy match of exactly-equal episodes; the
        // matched pairs form a common subsequence of both plans, so any
        // reordering lands in the leftovers.
        let mut consumed = vec![false; other.episodes.len()];
        let mut ptr = 0usize;
        let mut mine: Vec<&FaultEpisode> = Vec::new();
        for e in &self.episodes {
            match other.episodes[ptr..].iter().position(|o| o == e) {
                Some(off) => {
                    consumed[ptr + off] = true;
                    ptr += off + 1;
                }
                None => mine.push(e),
            }
        }
        let mut theirs: Vec<&FaultEpisode> = other
            .episodes
            .iter()
            .zip(&consumed)
            .filter(|(_, c)| !**c)
            .map(|(o, _)| o)
            .collect();
        let mut div: Option<SimTime> = None;
        let mut note = |t: SimTime| div = Some(div.map_or(t, |d: SimTime| d.min(t)));
        let start_shared = |s: SimTime| {
            self.episodes.iter().filter(|x| x.start == s).count() > 1
                || other.episodes.iter().filter(|x| x.start == s).count() > 1
        };
        for e in mine {
            match theirs
                .iter()
                .position(|o| o.ap == e.ap && o.kind == e.kind && o.start == e.start)
            {
                Some(i) => {
                    if start_shared(e.start) {
                        note(e.start);
                    } else {
                        note(e.end.min(theirs[i].end));
                    }
                    theirs.remove(i);
                }
                None => note(e.start),
            }
        }
        for o in theirs {
            note(o.start);
        }
        div
    }

    /// Divergence instant for prefix-sharing schedulers: like
    /// [`FaultPlan::first_divergence`], but with "behaviorally
    /// identical" (`None`) collapsed to [`SimTime::MAX`], so candidate
    /// checkpoints can be ranked on one total order — a later
    /// divergence means a deeper shareable prefix (DESIGN.md §13).
    pub fn divergence_rank(&self, other: &FaultPlan) -> SimTime {
        self.first_divergence(other).unwrap_or(SimTime::MAX)
    }

    /// Serialize to the artifact JSON form (replays exactly:
    /// microsecond times, shortest-round-trip floats).
    pub fn to_json(&self) -> Json {
        Json::obj([(
            "episodes",
            Json::arr(self.episodes.iter().map(FaultEpisode::to_json)),
        )])
    }

    /// Parse the artifact JSON form back. `None` if any episode is
    /// malformed.
    pub fn from_json(v: &Json) -> Option<FaultPlan> {
        let episodes = v
            .get("episodes")?
            .as_arr()?
            .iter()
            .map(FaultEpisode::from_json)
            .collect::<Option<Vec<_>>>()?;
        Some(FaultPlan { episodes })
    }
}

/// Which leg of the link a directional-loss query asks about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Direction {
    Up,
    Down,
}

/// Shared loss composition: independent episodes compose as
/// `1 - Π(1 - extra_i)` in episode order. `dir: None` folds symmetric
/// bursts only (the legacy [`FaultPlan::extra_loss`] contract);
/// `Some(_)` folds the matching leg of directional episodes in as
/// well. When no directional episode covers `(now, ap)` the factor
/// sequence — and so the float result, bit for bit — is identical for
/// all three variants.
fn extra_loss_dir(
    episodes: &[FaultEpisode],
    now: SimTime,
    ap: usize,
    dir: Option<Direction>,
) -> f64 {
    let mut pass = 1.0f64;
    for e in episodes {
        let extra = match e.kind {
            FaultKind::LossBurst { extra } => extra,
            FaultKind::AsymmetricLoss { up, down } => match dir {
                Some(Direction::Up) => up,
                Some(Direction::Down) => down,
                None => continue,
            },
            _ => continue,
        };
        if e.applies(now, ap) {
            pass *= 1.0 - extra.clamp(0.0, 1.0);
        }
    }
    1.0 - pass
}

/// Shared onset query: earliest-starting data-plane episode covering
/// `(now, ap)` in `episodes`. Data-plane means the payload path is
/// degraded while (for most classes) the control plane still looks
/// fine: blackouts and zombies, plus the adversarial classes — ARP
/// poison, captive portals, and directional loss. Control-plane DHCP
/// faults and [`FaultKind::IcmpBlackhole`] (survivable via the gateway
/// fallback) never arm a detection measurement.
fn data_fault_at(
    episodes: &[FaultEpisode],
    now: SimTime,
    ap: usize,
) -> Option<(SimTime, FaultKind)> {
    episodes
        .iter()
        .filter(|e| {
            matches!(
                e.kind,
                FaultKind::Blackout
                    | FaultKind::Zombie
                    | FaultKind::ArpPoison
                    | FaultKind::CaptivePortal
                    | FaultKind::AsymmetricLoss { .. }
            ) && e.applies(now, ap)
        })
        .map(|e| (e.start, e.kind))
        .min_by_key(|(start, _)| *start)
}

/// A per-AP query index over a [`FaultPlan`].
///
/// The plan keeps every episode in one flat list, so each
/// `blackout(now, ap)`-style query costs O(all episodes across all
/// APs) — a stormy dense deployment carries tens of thousands, and the
/// world asks on every frame. The index buckets episodes by target AP
/// once at world construction so a query touches only that AP's own
/// handful; global (`ap: None`) episodes are replicated into every
/// bucket, preserving the flat list's relative episode order so
/// floating-point compositions ([`FaultIndex::extra_loss`]) stay
/// bit-identical to the unindexed queries.
#[derive(Debug, Clone, Default)]
pub struct FaultIndex {
    per_ap: Vec<Vec<FaultEpisode>>,
    /// Ascending AP indices with at least one episode — the only APs a
    /// periodic fault sweep needs to visit.
    faulty: Vec<usize>,
    empty: bool,
}

impl FaultIndex {
    /// Bucket `plan`'s episodes for a world with `num_aps` APs.
    pub fn build(plan: &FaultPlan, num_aps: usize) -> FaultIndex {
        let mut per_ap: Vec<Vec<FaultEpisode>> = vec![Vec::new(); num_aps];
        for e in &plan.episodes {
            match e.ap {
                Some(i) => {
                    if i < num_aps {
                        per_ap[i].push(*e);
                    }
                }
                None => {
                    for bucket in per_ap.iter_mut() {
                        bucket.push(*e);
                    }
                }
            }
        }
        let faulty = (0..num_aps).filter(|&i| !per_ap[i].is_empty()).collect();
        FaultIndex {
            per_ap,
            faulty,
            empty: plan.is_empty(),
        }
    }

    /// True if the underlying plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.empty
    }

    /// Ascending indices of APs with at least one episode.
    pub fn faulty_aps(&self) -> &[usize] {
        &self.faulty
    }

    fn episodes_for(&self, ap: usize) -> &[FaultEpisode] {
        self.per_ap.get(ap).map(Vec::as_slice).unwrap_or(&[])
    }

    fn active(&self, now: SimTime, ap: usize, pred: impl Fn(FaultKind) -> bool) -> bool {
        self.episodes_for(ap)
            .iter()
            .any(|e| pred(e.kind) && e.applies(now, ap))
    }

    /// Is `ap` fully blacked out at `now`?
    pub fn blackout(&self, now: SimTime, ap: usize) -> bool {
        self.active(now, ap, |k| k == FaultKind::Blackout)
    }

    /// Is `ap` a zombie (associates but forwards nothing) at `now`?
    pub fn zombie(&self, now: SimTime, ap: usize) -> bool {
        self.active(now, ap, |k| k == FaultKind::Zombie)
    }

    /// Is `ap`'s DHCP server silent at `now`?
    pub fn dhcp_silent(&self, now: SimTime, ap: usize) -> bool {
        self.active(now, ap, |k| k == FaultKind::DhcpSilence)
    }

    /// Is `ap`'s DHCP pool exhausted at `now`?
    pub fn dhcp_exhausted(&self, now: SimTime, ap: usize) -> bool {
        self.active(now, ap, |k| k == FaultKind::DhcpExhausted)
    }

    /// Does `ap`'s gateway filter end-to-end ICMP at `now`?
    pub fn icmp_filtered(&self, now: SimTime, ap: usize) -> bool {
        self.active(now, ap, |k| k == FaultKind::IcmpBlackhole)
    }

    /// Is `ap`'s gateway ARP mapping hijacked at `now`?
    pub fn arp_poisoned(&self, now: SimTime, ap: usize) -> bool {
        self.active(now, ap, |k| k == FaultKind::ArpPoison)
    }

    /// Is `ap` fronted by a captive portal at `now`?
    pub fn captive_portal(&self, now: SimTime, ap: usize) -> bool {
        self.active(now, ap, |k| k == FaultKind::CaptivePortal)
    }

    /// Is any directional-loss episode active on `ap` at `now`?
    pub fn asym_active(&self, now: SimTime, ap: usize) -> bool {
        self.active(now, ap, |k| matches!(k, FaultKind::AsymmetricLoss { .. }))
    }

    /// Combined extra loss probability on `ap`'s link at `now`
    /// (symmetric classes only; see [`FaultPlan::extra_loss`]).
    pub fn extra_loss(&self, now: SimTime, ap: usize) -> f64 {
        extra_loss_dir(self.episodes_for(ap), now, ap, None)
    }

    /// Combined extra loss on client → AP frames at `now`.
    pub fn extra_loss_up(&self, now: SimTime, ap: usize) -> f64 {
        extra_loss_dir(self.episodes_for(ap), now, ap, Some(Direction::Up))
    }

    /// Combined extra loss on AP → client frames at `now`.
    pub fn extra_loss_down(&self, now: SimTime, ap: usize) -> f64 {
        extra_loss_dir(self.episodes_for(ap), now, ap, Some(Direction::Down))
    }

    /// Start of the earliest data-plane fault covering `(now, ap)`.
    pub fn data_fault_onset(&self, now: SimTime, ap: usize) -> Option<SimTime> {
        self.data_fault_at(now, ap).map(|(start, _)| start)
    }

    /// Earliest covering data-plane fault with its class (see
    /// [`FaultPlan::data_fault_at`]). The per-AP buckets preserve plan
    /// order, so tie-breaking matches the flat plan exactly.
    pub fn data_fault_at(&self, now: SimTime, ap: usize) -> Option<(SimTime, FaultKind)> {
        data_fault_at(self.episodes_for(ap), now, ap)
    }

    /// Is any data-plane fault active anywhere at `now`?
    pub fn any_data_fault(&self, now: SimTime) -> bool {
        self.faulty
            .iter()
            .any(|&i| self.data_fault_onset(now, i).is_some())
    }
}

/// Fault-attribution counters accumulated by the world during a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultStats {
    /// Frames (either direction) suppressed by AP blackouts.
    pub frames_dropped_blackout: u64,
    /// Uplink packets black-holed by zombie APs.
    pub packets_dropped_zombie: u64,
    /// DHCP requests ignored by silent DHCP servers.
    pub dhcp_dropped_silent: u64,
    /// NAKs synthesized for exhausted DHCP pools.
    pub dhcp_naks_exhausted: u64,
    /// End-to-end pings black-holed by ICMP-filtering gateways.
    pub icmp_dropped_filtered: u64,
    /// Upstream data-plane frames delivered to a hijacked (black-hole)
    /// gateway MAC during ARP-poison episodes.
    pub frames_blackholed_arp: u64,
    /// End-to-end packets intercepted by captive portals (gateway
    /// pings are answered; everything else is hijacked).
    pub packets_hijacked_portal: u64,
    /// Client → AP frames dropped while a directional-loss episode was
    /// active on the link.
    pub uplink_dropped_asym: u64,
    /// AP → client frames dropped while a directional-loss episode was
    /// active on the link.
    pub downlink_dropped_asym: u64,
    /// AP reboots performed at the end of blackout episodes.
    pub ap_reboots: u64,
    /// Time from data-plane fault onset to the client tearing the link
    /// down (deauth), seconds — the ping monitor's detection latency.
    pub detect_times_s: Vec<f64>,
    /// Fault class behind each detection, parallel to
    /// `detect_times_s` (always a data-plane class — blackout, zombie,
    /// ARP poison, captive portal, or asymmetric loss; only data-plane
    /// faults arm detection measurements). The attribution key for
    /// per-class SLO budgets.
    pub detect_kinds: Vec<FaultKind>,
    /// Time from a fault-coincident connectivity loss to the next
    /// restored connectivity, seconds, counting only spans with a
    /// *usable* candidate AP in radio range — in range **and** on a
    /// channel the client's configuration visits: a mobile client
    /// driving through a coverage gap is not "failing to recover", it
    /// has nothing to recover *to*, and an AP on a channel the client
    /// never tunes to is no more reachable than one beyond the radio
    /// horizon. The outage only opens when the faulted AP was both in
    /// range and on a usable channel to begin with.
    pub recover_times_s: Vec<f64>,
}

impl FaultStats {
    /// Record one detection latency attributed to `kind`.
    pub fn record_detect(&mut self, seconds: f64, kind: FaultKind) {
        self.detect_times_s.push(seconds);
        self.detect_kinds.push(kind);
    }

    /// Detection latencies attributed to fault class `label`
    /// (see [`FaultKind::label`]), in recording order.
    pub fn detect_times_for<'a>(&'a self, label: &'a str) -> impl Iterator<Item = f64> + 'a {
        self.detect_times_s
            .iter()
            .zip(&self.detect_kinds)
            .filter(move |(_, k)| k.label() == label)
            .map(|(&t, _)| t)
    }

    /// Worst detection latency in seconds, if any.
    pub fn max_detect_s(&self) -> Option<f64> {
        self.detect_times_s.iter().copied().reduce(f64::max)
    }

    /// Worst recovery latency in seconds, if any.
    pub fn max_recover_s(&self) -> Option<f64> {
        self.recover_times_s.iter().copied().reduce(f64::max)
    }

    /// Serialize the counters and timing samples for artifacts.
    pub fn to_json(&self) -> Json {
        Json::obj([
            (
                "frames_dropped_blackout",
                Json::UInt(self.frames_dropped_blackout),
            ),
            (
                "packets_dropped_zombie",
                Json::UInt(self.packets_dropped_zombie),
            ),
            ("dhcp_dropped_silent", Json::UInt(self.dhcp_dropped_silent)),
            ("dhcp_naks_exhausted", Json::UInt(self.dhcp_naks_exhausted)),
            (
                "icmp_dropped_filtered",
                Json::UInt(self.icmp_dropped_filtered),
            ),
            (
                "frames_blackholed_arp",
                Json::UInt(self.frames_blackholed_arp),
            ),
            (
                "packets_hijacked_portal",
                Json::UInt(self.packets_hijacked_portal),
            ),
            ("uplink_dropped_asym", Json::UInt(self.uplink_dropped_asym)),
            (
                "downlink_dropped_asym",
                Json::UInt(self.downlink_dropped_asym),
            ),
            ("ap_reboots", Json::UInt(self.ap_reboots)),
            (
                "detect_times_s",
                Json::arr(self.detect_times_s.iter().map(|&t| Json::Num(t))),
            ),
            (
                "detect_kinds",
                Json::arr(self.detect_kinds.iter().map(|k| Json::str(k.label()))),
            ),
            (
                "recover_times_s",
                Json::arr(self.recover_times_s.iter().map(|&t| Json::Num(t))),
            ),
        ])
    }
    /// Total interactions suppressed across all fault classes.
    pub fn total_drops(&self) -> u64 {
        self.frames_dropped_blackout
            + self.packets_dropped_zombie
            + self.dhcp_dropped_silent
            + self.dhcp_naks_exhausted
            + self.icmp_dropped_filtered
            + self.frames_blackholed_arp
            + self.packets_hijacked_portal
            + self.uplink_dropped_asym
            + self.downlink_dropped_asym
    }

    /// Mean detection latency in seconds, if any detections happened.
    pub fn mean_detect_s(&self) -> Option<f64> {
        if self.detect_times_s.is_empty() {
            None
        } else {
            Some(self.detect_times_s.iter().sum::<f64>() / self.detect_times_s.len() as f64)
        }
    }

    /// Mean recovery latency in seconds, if any recoveries happened.
    pub fn mean_recover_s(&self) -> Option<f64> {
        if self.recover_times_s.is_empty() {
            None
        } else {
            Some(self.recover_times_s.iter().sum::<f64>() / self.recover_times_s.len() as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs_f64(s)
    }

    #[test]
    fn scripted_windows_apply_half_open() {
        let plan = FaultPlan::scripted(vec![FaultEpisode {
            ap: Some(2),
            kind: FaultKind::Blackout,
            start: t(10.0),
            end: t(20.0),
        }]);
        assert!(!plan.blackout(t(9.999), 2));
        assert!(plan.blackout(t(10.0), 2));
        assert!(plan.blackout(t(19.999), 2));
        assert!(!plan.blackout(t(20.0), 2));
        assert!(!plan.blackout(t(15.0), 1), "wrong AP untouched");
    }

    #[test]
    fn global_episode_hits_every_ap() {
        let plan = FaultPlan::scripted(vec![FaultEpisode {
            ap: None,
            kind: FaultKind::DhcpSilence,
            start: t(0.0),
            end: t(5.0),
        }]);
        for ap in 0..10 {
            assert!(plan.dhcp_silent(t(1.0), ap));
        }
    }

    #[test]
    fn loss_bursts_compose_independently() {
        let plan = FaultPlan::scripted(vec![
            FaultEpisode {
                ap: Some(0),
                kind: FaultKind::LossBurst { extra: 0.5 },
                start: t(0.0),
                end: t(10.0),
            },
            FaultEpisode {
                ap: None,
                kind: FaultKind::LossBurst { extra: 0.5 },
                start: t(0.0),
                end: t(10.0),
            },
        ]);
        assert!((plan.extra_loss(t(1.0), 0) - 0.75).abs() < 1e-12);
        assert!((plan.extra_loss(t(1.0), 3) - 0.5).abs() < 1e-12);
        assert_eq!(plan.extra_loss(t(11.0), 0), 0.0);
    }

    fn ep(ap: Option<usize>, kind: FaultKind, start: f64, end: f64) -> FaultEpisode {
        FaultEpisode {
            ap,
            kind,
            start: t(start),
            end: t(end),
        }
    }

    #[test]
    fn first_divergence_identical_plans_share_everything() {
        let plan = FaultPlan::seeded(7, 20, SimDuration::from_secs(600), &FaultProfile::stormy());
        assert_eq!(plan.first_divergence(&plan.clone()), None);
        assert_eq!(FaultPlan::none().first_divergence(&FaultPlan::none()), None);
    }

    #[test]
    fn first_divergence_dropped_episode_diverges_at_its_start() {
        let a = ep(Some(1), FaultKind::Blackout, 10.0, 20.0);
        let b = ep(Some(2), FaultKind::Zombie, 40.0, 50.0);
        let full = FaultPlan::scripted(vec![a, b]);
        let tail_only = FaultPlan::scripted(vec![b]);
        // Symmetric: the dropped episode's start, from either side.
        assert_eq!(full.first_divergence(&tail_only), Some(t(10.0)));
        assert_eq!(tail_only.first_divergence(&full), Some(t(10.0)));
        // Against the empty plan: the earliest remaining start.
        assert_eq!(
            tail_only.first_divergence(&FaultPlan::none()),
            Some(t(40.0))
        );
    }

    #[test]
    fn first_divergence_end_trim_diverges_at_the_earlier_end() {
        let long = ep(Some(1), FaultKind::Blackout, 10.0, 60.0);
        let short = ep(Some(1), FaultKind::Blackout, 10.0, 35.0);
        let before = FaultPlan::scripted(vec![long]);
        let after = FaultPlan::scripted(vec![short]);
        assert_eq!(before.first_divergence(&after), Some(t(35.0)));
        assert_eq!(after.first_divergence(&before), Some(t(35.0)));
        // A start trim falls back to the earlier start, conservatively.
        let late_start = ep(Some(1), FaultKind::Blackout, 25.0, 60.0);
        let moved = FaultPlan::scripted(vec![late_start]);
        assert_eq!(before.first_divergence(&moved), Some(t(10.0)));
    }

    #[test]
    fn first_divergence_equal_start_reorder_counts_as_divergent() {
        // Detect attribution breaks onset ties in plan order, so a
        // reorder of equal-start episodes must diverge at that start
        // even though the drop pattern is identical.
        let a = ep(Some(1), FaultKind::Blackout, 10.0, 20.0);
        let b = ep(Some(1), FaultKind::Zombie, 10.0, 30.0);
        let ab = FaultPlan::scripted(vec![a, b]);
        let ba = FaultPlan::scripted(vec![b, a]);
        assert_eq!(ab.first_divergence(&ba), Some(t(10.0)));
        // And an end trim of one of the tied pair must not report the
        // trimmed end: the reorder could hide behind it.
        let a_trim = ep(Some(1), FaultKind::Blackout, 10.0, 15.0);
        let ba_trim = FaultPlan::scripted(vec![b, a_trim]);
        assert_eq!(ab.first_divergence(&ba_trim), Some(t(10.0)));
    }

    #[test]
    fn seeded_plans_are_deterministic_and_bounded() {
        let profile = FaultProfile::stormy();
        let dur = SimDuration::from_secs(600);
        let a = FaultPlan::seeded(7, 20, dur, &profile);
        let b = FaultPlan::seeded(7, 20, dur, &profile);
        assert_eq!(a, b);
        assert!(!a.is_empty(), "stormy profile over 20 AP-hours must fire");
        for e in &a.episodes {
            assert!(e.start < e.end);
            assert!(e.end <= SimTime::ZERO + dur);
        }
        // A different seed gives a different storm.
        let c = FaultPlan::seeded(8, 20, dur, &profile);
        assert_ne!(a, c);
    }

    #[test]
    fn seeded_respects_zero_rates() {
        let profile = FaultProfile {
            blackout_per_hour: 0.0,
            zombie_per_hour: 0.0,
            dhcp_silence_per_hour: 0.0,
            dhcp_exhausted_per_hour: 0.0,
            icmp_filtered_fraction: 0.0,
            loss_burst_per_hour: 0.0,
            ..FaultProfile::calm()
        };
        let plan = FaultPlan::seeded(1, 50, SimDuration::from_secs(3600), &profile);
        assert!(plan.is_empty());
    }

    #[test]
    fn index_agrees_with_flat_plan_queries() {
        // The index is a pure accelerator: every query must return
        // exactly what the flat plan returns, bit-for-bit, including
        // the float composition of overlapping loss bursts.
        let num_aps = 30;
        let dur = SimDuration::from_secs(900);
        let mut plan = FaultPlan::seeded(13, num_aps, dur, &FaultProfile::stormy());
        plan.episodes.push(FaultEpisode {
            ap: None,
            kind: FaultKind::LossBurst { extra: 0.123 },
            start: t(100.0),
            end: t(400.0),
        });
        let index = FaultIndex::build(&plan, num_aps);
        assert_eq!(index.is_empty(), plan.is_empty());
        for step in 0..90 {
            let now = t(step as f64 * 10.0);
            for ap in 0..num_aps {
                assert_eq!(index.blackout(now, ap), plan.blackout(now, ap));
                assert_eq!(index.zombie(now, ap), plan.zombie(now, ap));
                assert_eq!(index.dhcp_silent(now, ap), plan.dhcp_silent(now, ap));
                assert_eq!(index.dhcp_exhausted(now, ap), plan.dhcp_exhausted(now, ap));
                assert_eq!(index.icmp_filtered(now, ap), plan.icmp_filtered(now, ap));
                assert_eq!(
                    index.extra_loss(now, ap).to_bits(),
                    plan.extra_loss(now, ap).to_bits(),
                    "extra_loss must compose bit-identically"
                );
                assert_eq!(
                    index.data_fault_onset(now, ap),
                    plan.data_fault_onset(now, ap)
                );
            }
            assert_eq!(
                index.any_data_fault(now),
                (0..num_aps).any(|ap| plan.data_fault_onset(now, ap).is_some())
            );
        }
        // Every AP outside `faulty_aps()` is quiet for the whole run.
        for ap in 0..num_aps {
            if !index.faulty_aps().contains(&ap) {
                assert!(plan
                    .episodes
                    .iter()
                    .all(|e| e.ap.map(|a| a != ap).unwrap_or(false)));
            }
        }
    }

    #[test]
    fn plan_json_round_trips_exactly() {
        let mut plan =
            FaultPlan::seeded(11, 12, SimDuration::from_secs(600), &FaultProfile::stormy());
        plan.episodes.push(FaultEpisode {
            ap: None,
            kind: FaultKind::LossBurst {
                extra: 0.123456789012345,
            },
            start: t(1.5),
            end: t(2.25),
        });
        plan.episodes.push(FaultEpisode {
            ap: Some(3),
            kind: FaultKind::IcmpBlackhole,
            start: t(10.0),
            end: t(20.0),
        });
        let text = plan.to_json().pretty();
        let back = FaultPlan::from_json(&Json::parse(&text).unwrap()).unwrap();
        assert_eq!(back, plan, "replayed plan must be identical");
        // Byte-stable: serializing the round-tripped plan again gives
        // the same document.
        assert_eq!(back.to_json().pretty(), text);
    }

    #[test]
    fn kind_json_rejects_unknown_labels() {
        let v = Json::obj([("kind", Json::str("gremlins"))]);
        assert_eq!(FaultKind::from_json(&v), None);
        let missing_extra = Json::obj([("kind", Json::str("loss-burst"))]);
        assert_eq!(FaultKind::from_json(&missing_extra), None);
    }

    #[test]
    fn kind_json_rejects_missing_directional_fields() {
        // Replay must never guess a direction: both legs are required.
        let missing_down = Json::obj([
            ("kind", Json::str("asymmetric-loss")),
            ("up", Json::Num(0.5)),
        ]);
        assert_eq!(FaultKind::from_json(&missing_down), None);
        let missing_up = Json::obj([
            ("kind", Json::str("asymmetric-loss")),
            ("down", Json::Num(0.5)),
        ]);
        assert_eq!(FaultKind::from_json(&missing_up), None);
        let missing_both = Json::obj([("kind", Json::str("asymmetric-loss"))]);
        assert_eq!(FaultKind::from_json(&missing_both), None);
    }

    #[test]
    fn every_kind_round_trips_through_json() {
        let kinds = [
            FaultKind::Blackout,
            FaultKind::Zombie,
            FaultKind::DhcpSilence,
            FaultKind::DhcpExhausted,
            FaultKind::IcmpBlackhole,
            FaultKind::LossBurst {
                extra: 0.123456789012345,
            },
            FaultKind::ArpPoison,
            FaultKind::CaptivePortal,
            FaultKind::AsymmetricLoss {
                up: 0.987654321098765,
                down: 0.0123,
            },
        ];
        for kind in kinds {
            let text = kind.to_json().pretty();
            let back = FaultKind::from_json(&Json::parse(&text).unwrap()).unwrap();
            assert_eq!(back, kind, "{} must round-trip", kind.label());
            // Episodes carrying each kind round-trip too.
            let e = FaultEpisode {
                ap: Some(4),
                kind,
                start: t(1.25),
                end: t(9.5),
            };
            let back = FaultEpisode::from_json(&Json::parse(&e.to_json().pretty()).unwrap());
            assert_eq!(back, Some(e));
        }
    }

    #[test]
    fn scripted_drops_zero_length_episodes() {
        let plan = FaultPlan::scripted(vec![
            ep(Some(0), FaultKind::Blackout, 10.0, 10.0),
            ep(Some(0), FaultKind::Zombie, 5.0, 15.0),
            ep(None, FaultKind::CaptivePortal, 20.0, 20.0),
        ]);
        assert_eq!(plan.episodes.len(), 1, "empty windows are husks");
        assert_eq!(plan.episodes[0].kind, FaultKind::Zombie);
        // from_json stays exact: replay artifacts are never rewritten.
        let husk = FaultPlan {
            episodes: vec![ep(Some(0), FaultKind::Blackout, 10.0, 10.0)],
        };
        let back = FaultPlan::from_json(&Json::parse(&husk.to_json().pretty()).unwrap()).unwrap();
        assert_eq!(back.episodes.len(), 1);
    }

    #[test]
    fn adversarial_queries_and_directional_loss() {
        let plan = FaultPlan::scripted(vec![
            ep(Some(0), FaultKind::ArpPoison, 10.0, 20.0),
            ep(Some(0), FaultKind::CaptivePortal, 30.0, 40.0),
            ep(
                Some(0),
                FaultKind::AsymmetricLoss {
                    up: 0.5,
                    down: 0.25,
                },
                50.0,
                60.0,
            ),
            ep(Some(0), FaultKind::LossBurst { extra: 0.5 }, 50.0, 60.0),
        ]);
        assert!(plan.arp_poisoned(t(15.0), 0));
        assert!(!plan.arp_poisoned(t(25.0), 0));
        assert!(!plan.arp_poisoned(t(15.0), 1), "wrong AP untouched");
        assert!(plan.captive_portal(t(35.0), 0));
        assert!(!plan.captive_portal(t(15.0), 0));
        assert!(plan.asym_active(t(55.0), 0));
        assert!(!plan.asym_active(t(45.0), 0));
        // Directional composition folds the matching leg with the
        // symmetric burst; the legacy query sees only the burst.
        assert!((plan.extra_loss_up(t(55.0), 0) - 0.75).abs() < 1e-12);
        assert!((plan.extra_loss_down(t(55.0), 0) - 0.625).abs() < 1e-12);
        assert!((plan.extra_loss(t(55.0), 0) - 0.5).abs() < 1e-12);
        // With no directional episode active all three agree bit-wise.
        assert_eq!(plan.extra_loss(t(49.9), 0), 0.0);
        assert_eq!(
            plan.extra_loss_up(t(55.0), 1).to_bits(),
            plan.extra_loss(t(55.0), 1).to_bits()
        );
        // All three adversarial classes are data-plane: they arm the
        // detect-attribution query with the right onset and class.
        assert_eq!(
            plan.data_fault_at(t(15.0), 0),
            Some((t(10.0), FaultKind::ArpPoison))
        );
        assert_eq!(
            plan.data_fault_at(t(35.0), 0),
            Some((t(30.0), FaultKind::CaptivePortal))
        );
        assert_eq!(
            plan.data_fault_at(t(55.0), 0),
            Some((
                t(50.0),
                FaultKind::AsymmetricLoss {
                    up: 0.5,
                    down: 0.25
                }
            ))
        );
        // Index parity on every new query.
        let index = FaultIndex::build(&plan, 2);
        for step in 0..130 {
            let now = t(step as f64 * 0.5);
            for ap in 0..2 {
                assert_eq!(index.arp_poisoned(now, ap), plan.arp_poisoned(now, ap));
                assert_eq!(index.captive_portal(now, ap), plan.captive_portal(now, ap));
                assert_eq!(index.asym_active(now, ap), plan.asym_active(now, ap));
                assert_eq!(
                    index.extra_loss_up(now, ap).to_bits(),
                    plan.extra_loss_up(now, ap).to_bits()
                );
                assert_eq!(
                    index.extra_loss_down(now, ap).to_bits(),
                    plan.extra_loss_down(now, ap).to_bits()
                );
                assert_eq!(index.data_fault_at(now, ap), plan.data_fault_at(now, ap));
            }
        }
    }

    #[test]
    fn detect_attribution_filters_by_class() {
        let mut stats = FaultStats::default();
        stats.record_detect(1.0, FaultKind::Blackout);
        stats.record_detect(2.0, FaultKind::Zombie);
        stats.record_detect(3.0, FaultKind::Blackout);
        assert_eq!(
            stats.detect_times_for("blackout").collect::<Vec<_>>(),
            vec![1.0, 3.0]
        );
        assert_eq!(
            stats.detect_times_for("zombie").collect::<Vec<_>>(),
            vec![2.0]
        );
        assert_eq!(stats.max_detect_s(), Some(3.0));
        assert_eq!(stats.max_recover_s(), None);
        // Serializes with the parallel kind array intact.
        let j = stats.to_json();
        assert_eq!(j.get("detect_kinds").unwrap().as_arr().unwrap().len(), 3);
    }

    #[test]
    fn data_fault_at_names_the_class() {
        let plan = FaultPlan::scripted(vec![
            FaultEpisode {
                ap: Some(0),
                kind: FaultKind::Zombie,
                start: t(5.0),
                end: t(50.0),
            },
            FaultEpisode {
                ap: Some(0),
                kind: FaultKind::Blackout,
                start: t(10.0),
                end: t(20.0),
            },
        ]);
        let index = FaultIndex::build(&plan, 1);
        assert_eq!(
            plan.data_fault_at(t(15.0), 0),
            Some((t(5.0), FaultKind::Zombie))
        );
        assert_eq!(
            index.data_fault_at(t(15.0), 0),
            plan.data_fault_at(t(15.0), 0)
        );
        assert_eq!(plan.data_fault_at(t(1.0), 0), None);
    }

    #[test]
    fn onset_reports_earliest_covering_data_fault() {
        let plan = FaultPlan::scripted(vec![
            FaultEpisode {
                ap: Some(0),
                kind: FaultKind::Zombie,
                start: t(5.0),
                end: t(50.0),
            },
            FaultEpisode {
                ap: Some(0),
                kind: FaultKind::Blackout,
                start: t(10.0),
                end: t(20.0),
            },
            // DHCP faults are control-plane: never an "onset".
            FaultEpisode {
                ap: Some(0),
                kind: FaultKind::DhcpSilence,
                start: t(0.0),
                end: t(100.0),
            },
        ]);
        assert_eq!(plan.data_fault_onset(t(1.0), 0), None);
        assert_eq!(plan.data_fault_onset(t(15.0), 0), Some(t(5.0)));
        assert_eq!(plan.data_fault_onset(t(60.0), 0), None);
    }
}
