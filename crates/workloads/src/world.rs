//! The discrete-event vehicular Wi-Fi world.
//!
//! One mobile client — any [`ClientSystem`] — drives along a
//! [`MobilityModel`] through a [`Deployment`] of APs. Each AP couples an
//! 802.11 MAC (with PSM buffering), a DHCP server with the paper's β
//! response-delay distribution, a rate-shaped backhaul, and a wired sink
//! server answering pings and serving bulk TCP downloads. The air is a
//! per-channel half-duplex medium with propagation-range and loss
//! models; the client's single radio pays the hardware-reset latency for
//! every channel switch.
//!
//! Every run is a pure function of the seed in [`WorldConfig`].

use crate::capture::{CaptureWriter, Direction};
use crate::faults::{FaultIndex, FaultPlan, FaultStats};
use crate::metrics::RunResult;
use spider_mac80211::{ApConfig, ApEvent, ApMac, ClientSystem, DriverAction, RxFrame};
use spider_mobility::{CachedPath, Deployment, MobilityModel, Position, SpatialGrid};
use spider_netstack::{DhcpServer, DhcpServerConfig};
use spider_radio::{ChannelMedium, LossModel, PhyParams, Propagation, Radio};
use spider_simcore::IntervalTracker;
use spider_simcore::{EventQueue, FxHashMap, FxHashSet, RateMeter, SimDuration, SimRng, SimTime};
use spider_tcpsim::{TcpConfig, TcpSender, TcpSenderState};
use spider_wire::ip::L4;
use spider_wire::{
    AirFrame, Channel, DhcpMessage, DhcpOp, Frame, FrameBody, FrameKind, Ipv4Addr, Ipv4Packet,
    MacAddr, SharedFrame, TcpSegment,
};

use std::sync::Arc;

/// The well-known wired sink (re-exported from the Spider interface
/// definitions so baselines and world agree).
pub use spider_core::iface::{SERVER_IP, SERVER_PORT};

/// World configuration.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// PHY parameters (rate, switch latency, range).
    pub phy: PhyParams,
    /// Propagation model.
    pub propagation: Propagation,
    /// Frame loss model.
    pub loss: LossModel,
    /// Client mobility.
    pub mobility: MobilityModel,
    /// AP deployment.
    pub deployment: Deployment,
    /// Simulated run length.
    pub duration: SimDuration,
    /// Root seed — the run is a pure function of it.
    pub seed: u64,
    /// TCP parameters for the bulk downloads.
    pub tcp: TcpConfig,
    /// Unicast MAC-layer transmission attempts (1 = no link-layer ARQ).
    /// Real 802.11 retries unicast frames several times, so the residual
    /// loss seen by upper layers mid-cell is far below the raw per-
    /// transmission loss; broadcasts (beacons) are never retried.
    pub mac_retries: u32,
    /// Extra margin beyond radio range within which APs are actively
    /// simulated (beaconing), in metres.
    pub activation_margin_m: f64,
    /// Maximum backhaul queueing delay before drop-tail (bufferbloat
    /// guard that keeps TCP honest).
    pub backhaul_queue_cap: SimDuration,
    /// Write every delivered frame to this capture file (see
    /// [`crate::capture`]); `(path, frame limit)` with 0 = unlimited.
    pub capture: Option<(std::path::PathBuf, u64)>,
    /// Counterfactual knob: let APs PSM-buffer DHCP responses for
    /// sleeping clients. Real 802.11 does **not** behave this way — the
    /// paper's whole multi-channel join penalty rests on join traffic
    /// being unbufferable (§1). `ablation_psm` flips this to show how
    /// much of the penalty that one mechanism explains.
    pub psm_buffers_join_traffic: bool,
    /// Fault-injection schedule (see [`crate::faults`]); empty by
    /// default. Like the seed, part of the run's pure-function inputs.
    pub faults: FaultPlan,
}

impl WorldConfig {
    /// Sensible defaults around a deployment + mobility pair.
    pub fn new(
        mobility: MobilityModel,
        deployment: Deployment,
        duration: SimDuration,
        seed: u64,
    ) -> WorldConfig {
        WorldConfig {
            phy: PhyParams::b11(),
            propagation: Propagation::outdoor(),
            loss: LossModel::paper_default(),
            mobility,
            deployment,
            duration,
            seed,
            tcp: TcpConfig::default(),
            mac_retries: 4,
            activation_margin_m: 30.0,
            backhaul_queue_cap: SimDuration::from_millis(200),
            capture: None,
            psm_buffers_join_traffic: false,
            faults: FaultPlan::none(),
        }
    }
}

/// World events.
#[derive(Debug, Clone)]
enum Ev {
    /// Poll the client system.
    ClientWake,
    /// Poll AP `usize` (beacons + TCP sender timers).
    ApWake(usize),
    /// The client radio finished switching to the channel.
    SwitchDone(Channel),
    /// A frame arrives at the client antenna.
    AirToClient {
        /// The frame. A broadcast fan-out enqueues N refcount bumps of
        /// one shared copy, a unicast frame rides inline in its own box
        /// ([`AirFrame`]); the event payload stays pointer-sized on the
        /// heap either way.
        frame: AirFrame,
        /// Channel it was sent on.
        channel: Channel,
        /// Transmitting AP (for RSSI computation).
        ap: usize,
    },
    /// A frame arrives at AP `ap`.
    AirToAp {
        /// Receiving AP index.
        ap: usize,
        /// The frame (shared or inline, see [`Ev::AirToClient`]).
        frame: AirFrame,
    },
    /// An uplink packet reached AP `ap`'s wired server.
    ServerRx {
        /// The AP whose backhaul carried it.
        ap: usize,
        /// The packet, boxed so the common frame events stay small:
        /// the calendar queue copies elements on push and `swap_remove`,
        /// and packet events are a minority of the traffic.
        packet: Box<Ipv4Packet>,
    },
    /// A downlink packet is ready at AP `ap` for wireless delivery.
    Downlink {
        /// The AP.
        ap: usize,
        /// Destination client MAC.
        dst: MacAddr,
        /// The packet (boxed, see [`Ev::ServerRx`]).
        packet: Box<Ipv4Packet>,
        /// Whether the AP may PSM-buffer it (join traffic may not be).
        bufferable: bool,
    },
    /// Periodic mobility / AP-activation sweep.
    MobilityCheck,
}

/// One access point with everything behind it.
// Clone: part of the world snapshot — the MAC association table, DHCP
// pool, live TCP senders, ARP bindings, backhaul horizon and the ISS
// RNG all travel with a fork (DESIGN.md §13).
#[derive(Clone)]
struct ApNode {
    /// Cumulative TCP timeout/retransmit counts from retired senders.
    tcp_timeouts: u64,
    tcp_retransmits: u64,
    /// Whether the DHCP server answers (broken APs ignore DHCP).
    dhcp_responsive: bool,
    position: Position,
    channel: Channel,
    mac: ApMac,
    dhcp: DhcpServer,
    /// TCP senders keyed by the client's source port, with the client
    /// IP recorded at SYN time.
    senders: FxHashMap<u16, (Ipv4Addr, TcpSender)>,
    /// IP → client MAC bindings learned from DHCP and uplink traffic.
    arp: FxHashMap<Ipv4Addr, MacAddr>,
    /// Backhaul serialisation horizon (downlink FIFO).
    backhaul_free_at: SimTime,
    /// Backhaul rate in bytes/second.
    backhaul_bps: f64,
    /// One-way backhaul latency.
    backhaul_latency: SimDuration,
    /// Whether the AP is inside the client's activation horizon.
    active: bool,
    /// Earliest scheduled ApWake (dedup).
    wake_scheduled: SimTime,
    /// Deterministic ISS source for new TCP connections.
    iss_rng: SimRng,
}

/// Air-frame conservation ledger (validate builds only, DESIGN.md §11).
///
/// Every frame that wins its loss draw is *created* when its `Air*`
/// delivery event is scheduled. Each such event, once popped, is either
/// *delivered* into a MAC/driver or *dropped* (mistuned radio, blackout);
/// events still pending when the run ends are *in flight*. The run-end
/// audit asserts `created = delivered + dropped + in_flight` — any gap
/// means a dispatch arm gained an exit path that loses frames silently.
// Clone: the ledger is part of the world snapshot, so a forked run's
// audit spans the checkpoint boundary — frames created before the fork
// must still balance against deliveries after it (DESIGN.md §13).
#[cfg(feature = "validate")]
#[derive(Debug, Default, Clone)]
struct AirLedger {
    created: u64,
    delivered: u64,
    dropped: u64,
    in_flight: u64,
}

/// The world.
pub struct World<C: ClientSystem> {
    cfg: WorldConfig,
    queue: EventQueue<Ev>,
    client: C,
    radio: Radio,
    medium: ChannelMedium,
    aps: Vec<ApNode>,
    bssid_index: FxHashMap<MacAddr, usize>,
    /// Spatial index over AP sites: mobility sweeps and broadcast
    /// fan-out query *nearby* APs instead of scanning all of them.
    grid: SpatialGrid,
    /// Client route with precomputed geometry (bit-identical positions
    /// to `cfg.mobility`, minus the per-call segment arithmetic).
    path: CachedPath,
    /// Per-AP fault-episode index (accelerates every plan query).
    findex: FaultIndex,
    /// AP ids inside the activation horizon as of the last mobility
    /// sweep, ascending — lets deactivation walk the active set instead
    /// of the whole deployment.
    active_ids: Vec<usize>,
    /// Scratch for grid queries in the mobility sweep.
    nearby_scratch: Vec<usize>,
    /// Scratch for grid queries in the broadcast fan-out.
    targets_scratch: Vec<usize>,
    /// Scratch for AP MAC event batches (poll / rx / downlink).
    ap_ev_scratch: Vec<ApEvent>,
    /// Scratch for the TCP-sender port walk in `ap_wake`.
    ports_scratch: Vec<u16>,
    /// Scratch for TCP sender output (`on_segment_into` / `poll_into`),
    /// reused so the wired hot path never allocates a return vector.
    segs_scratch: Vec<TcpSegment>,
    /// Scratch for client driver actions (`on_frame_into` & friends).
    actions_scratch: Vec<DriverAction>,
    /// Events processed so far (reported in [`RunResult::events`]).
    events: u64,
    rng_loss: SimRng,
    // Metrics.
    rate: RateMeter,
    conn: IntervalTracker,
    delivered_prev: u64,
    encountered: FxHashSet<usize>,
    client_wake_scheduled: SimTime,
    // Deliberately NOT forked: `snapshot()` sets this to `None` so a
    // fork never inherits the parent's open trace file. The capture
    // sink is observability, not simulation state — dropping it cannot
    // affect the event stream. lint:allow(snapshot-completeness)
    capture: Option<CaptureWriter>,
    // Fault-injection state.
    fstats: FaultStats,
    #[cfg(feature = "validate")]
    air: AirLedger,
    /// Per-AP "was blacked out at the last sweep" (reboot edge detector).
    in_blackout: Vec<bool>,
    /// APs with an armed time-to-detect measurement:
    /// ap → (episode start, detection clock start, fault class). A
    /// `None` clock is lazy: it starts at the first packet the fault
    /// actually swallows (see [`World::note_fault_bite`]).
    pending_detect: FxHashMap<usize, (SimTime, Option<SimTime>, crate::faults::FaultKind)>,
    /// Episodes whose detection has already been recorded.
    detect_done: FxHashSet<(usize, SimTime)>,
    /// Open fault-coincident connectivity outage, if any: recovery time
    /// accrued so far while a candidate AP was in range, plus the start
    /// of the currently-running covered span (`None` while the client
    /// is out of coverage — driving through open country is mobility,
    /// not recovery latency).
    fault_outage: Option<(SimDuration, Option<SimTime>)>,
    /// Was any AP within actual radio range at the last mobility sweep?
    client_covered: bool,
    prev_connected: bool,
    /// Whether the t=0 bootstrap events have been scheduled (set by the
    /// first [`World::run_until`]/[`World::finish`] call; cloned into
    /// forks so a resumed world never re-bootstraps).
    started: bool,
}

// `Clone` routes through [`World::snapshot`] so generic checkpoint
// plumbing (e.g. `simcore::forked_sweep`) can clone worlds; the named
// methods below are the intent-bearing API.
impl<C: ClientSystem + Clone> Clone for World<C> {
    fn clone(&self) -> Self {
        self.snapshot()
    }
}

impl<C: ClientSystem + Clone> World<C> {
    /// Deep-clone the entire live simulation state — calendar queue
    /// (with `(at, seq)` ordering and the seq counter intact), RNG
    /// streams, every AP stack, the client system, fault engine state,
    /// metrics accumulators, and (in validate builds) the air-frame
    /// ledger, so the audit spans the snapshot boundary.
    ///
    /// The returned world resumes **bit-identically**: advancing the
    /// original and the snapshot produces the same events, metrics and
    /// `RunResult`. The one exception is the capture handle — an open
    /// file cannot be cloned, so snapshots come up captureless (see
    /// [`World::arm_capture`]).
    pub fn snapshot(&self) -> World<C> {
        let mut cfg = self.cfg.clone();
        cfg.capture = None;
        World {
            cfg,
            queue: self.queue.clone(),
            client: self.client.clone(),
            radio: self.radio.clone(),
            medium: self.medium.clone(),
            aps: self.aps.clone(),
            bssid_index: self.bssid_index.clone(),
            grid: self.grid.clone(),
            path: self.path.clone(),
            findex: self.findex.clone(),
            active_ids: self.active_ids.clone(),
            nearby_scratch: Vec::new(),
            targets_scratch: Vec::new(),
            ap_ev_scratch: Vec::new(),
            ports_scratch: Vec::new(),
            segs_scratch: Vec::with_capacity(64),
            actions_scratch: Vec::with_capacity(16),
            events: self.events,
            rng_loss: self.rng_loss.clone(),
            rate: self.rate.clone(),
            conn: self.conn.clone(),
            delivered_prev: self.delivered_prev,
            encountered: self.encountered.clone(),
            client_wake_scheduled: self.client_wake_scheduled,
            capture: None,
            fstats: self.fstats.clone(),
            #[cfg(feature = "validate")]
            air: self.air.clone(),
            in_blackout: self.in_blackout.clone(),
            pending_detect: self.pending_detect.clone(),
            detect_done: self.detect_done.clone(),
            fault_outage: self.fault_outage,
            client_covered: self.client_covered,
            prev_connected: self.prev_connected,
            started: self.started,
        }
    }

    /// Fork this world: a snapshot intended to be resumed (the name is
    /// the intent; the mechanics are [`World::snapshot`]). Typical use:
    /// `run_until(t)` once, then fork per variant and `finish()` each.
    pub fn fork(&self) -> World<C> {
        self.snapshot()
    }

    /// Fork under a different fault plan: the prefix-sharing primitive
    /// (DESIGN.md §13). Valid only when `faults` agrees with this
    /// world's plan strictly beyond [`World::plan_horizon`] —
    /// everything simulated so far must be plan-independent, which
    /// [`FaultPlan::first_divergence`] bounds conservatively. Before the
    /// first divergent episode the fault engine performs no state
    /// changes and draws no RNG, so swapping the plan and rebuilding the
    /// episode index yields exactly the world a cold run under `faults`
    /// would have reached.
    pub fn fork_with_plan(&self, faults: FaultPlan) -> World<C> {
        let mut w = self.snapshot();
        w.rebase_plan(faults);
        w
    }

    /// Swap this world's fault plan in place — [`World::fork_with_plan`]
    /// without the snapshot. Same contract: the new plan must agree
    /// with the current one strictly beyond [`World::plan_horizon`].
    pub fn rebase_plan(&mut self, faults: FaultPlan) {
        debug_assert!(
            self.cfg
                .faults
                .first_divergence(&faults)
                .is_none_or(|d| d > self.plan_horizon()),
            "rebase_plan: candidate plan diverges at or before the plan horizon ({})",
            self.plan_horizon(),
        );
        self.findex = FaultIndex::build(&faults, self.aps.len());
        self.cfg.faults = faults;
    }

    /// Re-derive every RNG stream this world holds under a new root
    /// seed — the seed analogue of [`World::rebase_plan`], and the
    /// primitive that turns an N-seed experiment fan into N forks of
    /// one constructed world (DESIGN.md §13).
    ///
    /// Every stream a world holds records its derivation path (root
    /// seed + label/index chain, see `simcore::rng`), so rebasing
    /// replays each chain from `new_seed`: held streams (per-AP DHCP
    /// and ISS, the world loss stream) via [`SimRng::rebase_seed`], and
    /// the per-AP beacon phase — which is *drawn* at construction, not
    /// held — by re-deriving its stream and redrawing the baked-in
    /// first-beacon instant. The result is bit-identical to
    /// constructing the world cold with `cfg.seed = new_seed`.
    ///
    /// Only sound on an **unstarted** world: once events have fired,
    /// streams have drawn (their state is a function of the old seed)
    /// and the beacon phase has been consumed by the queue. This
    /// method asserts the world has not started; debug and `validate`
    /// builds additionally panic inside [`SimRng::rebase_seed`] if any
    /// held stream has drawn.
    pub fn rebase_seed(&mut self, new_seed: u64) {
        assert!(
            !self.started,
            "rebase_seed: world has already started; seed rebasing is only \
             sound before the first event (DESIGN.md §13)"
        );
        let root = SimRng::new(new_seed);
        for (site, ap) in self.cfg.deployment.sites.iter().zip(self.aps.iter_mut()) {
            let mut phase_rng = root.stream_indexed("beacon-phase", site.id as u64);
            ap.mac
                .rebase_first_beacon(SimTime::from_micros(phase_rng.uniform_u64(0, 102_400)));
            ap.dhcp.rng_mut().rebase_seed(new_seed);
            ap.iss_rng.rebase_seed(new_seed);
        }
        self.rng_loss.rebase_seed(new_seed);
        self.cfg.seed = new_seed;
    }

    /// Fork this world under a different root seed: snapshot +
    /// [`World::rebase_seed`]. Same contract — the source world must
    /// not have started.
    pub fn fork_with_seed(&self, seed: u64) -> World<C> {
        let mut w = self.snapshot();
        w.rebase_seed(seed);
        w
    }

    /// Fork this world and advance the fork as close to `target` as
    /// possible while keeping its [`World::plan_horizon`] strictly
    /// before `divergence` — the safe base for a
    /// [`World::rebase_plan`] swap of any plan agreeing up to that
    /// point. Two stages so overshoot retries stay cheap: first to a
    /// margin before the target (the medium's look-ahead is a few
    /// frames of airtime, far less than the margin), then the final
    /// stretch, backed off past the observed look-ahead and redone
    /// from the margin snapshot on an overshoot. Returns the fork, the
    /// limit it actually consumed events up to, and the events
    /// executed including discarded attempts.
    ///
    /// Requires `self.plan_horizon() < divergence`.
    pub fn advance_shared(&self, target: SimTime, divergence: SimTime) -> (World<C>, SimTime, u64) {
        debug_assert!(
            self.plan_horizon() < divergence,
            "advance_shared: this world has already peeked past the divergence point"
        );
        /// How far short of the target stage 1 stops. Generously above
        /// any realistic channel backlog, and still a rounding error
        /// against the seconds-scale prefixes being shared.
        const MARGIN: SimDuration = SimDuration::from_millis(100);

        let mut executed = 0u64;
        let floor = self.now();
        let target = target.max(floor);
        let advance_to = |from: &World<C>, limit: SimTime, executed: &mut u64| {
            let mut w = from.fork();
            let before = w.events_processed();
            w.run_until(limit);
            *executed += w.events_processed() - before;
            w
        };

        // Stage 1: to `target - MARGIN`. An overshoot here means a
        // pathological backlog; retry a few times, then give up on
        // advancing at all (a plain fork is always safe).
        let mut stage1 =
            SimTime::from_micros(target.as_micros().saturating_sub(MARGIN.as_micros())).max(floor);
        let mut tries = 0;
        let base = loop {
            let w = advance_to(self, stage1, &mut executed);
            if w.plan_horizon() < divergence {
                break w;
            }
            let back = w.plan_horizon().saturating_since(divergence) + SimDuration::from_micros(1);
            tries += 1;
            if stage1 <= floor || tries >= 3 {
                return (self.fork(), floor, executed);
            }
            stage1 = SimTime::from_micros(stage1.as_micros().saturating_sub(back.as_micros()))
                .max(floor);
        };
        if stage1 >= target {
            return (base, stage1, executed);
        }

        // Stage 2: the last stretch. Each retry redoes at most the
        // margin's worth of events from the stage-1 snapshot.
        let mut t = target;
        let mut tries = 0;
        loop {
            let w = advance_to(&base, t, &mut executed);
            if w.plan_horizon() < divergence {
                return (w, t, executed);
            }
            let back = w.plan_horizon().saturating_since(divergence) + SimDuration::from_micros(1);
            tries += 1;
            if t <= stage1 || tries >= 8 {
                return (base, stage1, executed);
            }
            t = SimTime::from_micros(t.as_micros().saturating_sub(back.as_micros())).max(stage1);
        }
    }

    /// The latest simulated instant whose fault-plan state has already
    /// been consulted. Frame fates are decided at *reservation* time,
    /// and a reservation starts in the future whenever the channel is
    /// busy ([`ChannelMedium::reserve`]) — so a plan swap is only safe
    /// strictly beyond this point, not merely beyond [`World::now`].
    pub fn plan_horizon(&self) -> SimTime {
        self.now().max(self.medium.horizon())
    }
}

impl<C: ClientSystem> World<C> {
    /// Build a world around a client system.
    pub fn new(cfg: WorldConfig, client: C) -> World<C> {
        let root = SimRng::new(cfg.seed);
        let mut aps = Vec::with_capacity(cfg.deployment.len());
        let mut bssid_index = FxHashMap::default();
        for site in &cfg.deployment.sites {
            let bssid = MacAddr::from_id(0x00AA_0000 + site.id as u64);
            let ssid = spider_wire::Ssid::new(format!("open-{}", site.id));
            // Offset each AP's beacon phase so beacons do not collide in
            // lockstep.
            let mut phase_rng = root.stream_indexed("beacon-phase", site.id as u64);
            let first_beacon = SimTime::from_micros(phase_rng.uniform_u64(0, 102_400));
            let mac = ApMac::new(ApConfig::open(bssid, ssid, site.channel), first_beacon);
            let dhcp = DhcpServer::new(
                DhcpServerConfig::for_ap(site.id, site.dhcp_beta),
                root.stream_indexed("dhcp", site.id as u64),
            );
            bssid_index.insert(bssid, site.id);
            aps.push(ApNode {
                tcp_timeouts: 0,
                tcp_retransmits: 0,
                dhcp_responsive: site.dhcp_responsive,
                position: site.position,
                channel: site.channel,
                mac,
                dhcp,
                senders: FxHashMap::default(),
                arp: FxHashMap::default(),
                backhaul_free_at: SimTime::ZERO,
                backhaul_bps: site.backhaul_bps,
                backhaul_latency: SimDuration::from_secs_f64(site.backhaul_latency_s),
                active: false,
                wake_scheduled: SimTime::MAX,
                iss_rng: root.stream_indexed("iss", site.id as u64),
            });
        }
        // The radio starts wherever the driver believes it is.
        let radio = Radio::new(client.initial_channel());
        let capture = cfg
            .capture
            .as_ref()
            .map(|(path, limit)| CaptureWriter::create(path, *limit).expect("create capture file"));
        let num_aps = aps.len();
        // Cell size near the query radius keeps lookups to a 3×3 cell
        // neighbourhood; both sweep (horizon) and fan-out (range) radii
        // are within one cell of it.
        let horizon = cfg.propagation.range_m + cfg.activation_margin_m;
        let grid = cfg.deployment.grid(horizon.max(1.0));
        let path = CachedPath::new(cfg.mobility.clone());
        let findex = FaultIndex::build(&cfg.faults, num_aps);
        World {
            // Steady state holds beacons and data frames in flight for
            // every nearby AP plus timers; 1024 slots covers dense
            // deployments without ever regrowing mid-run.
            queue: EventQueue::with_capacity(1024),
            client,
            radio,
            medium: ChannelMedium::new(),
            aps,
            bssid_index,
            grid,
            path,
            findex,
            active_ids: Vec::new(),
            nearby_scratch: Vec::new(),
            targets_scratch: Vec::new(),
            ap_ev_scratch: Vec::new(),
            ports_scratch: Vec::new(),
            segs_scratch: Vec::with_capacity(64),
            actions_scratch: Vec::with_capacity(16),
            events: 0,
            rng_loss: root.stream("loss"),
            rate: RateMeter::new(SimTime::ZERO, SimDuration::from_secs(1)),
            conn: IntervalTracker::new(SimTime::ZERO, false),
            delivered_prev: 0,
            encountered: FxHashSet::default(),
            client_wake_scheduled: SimTime::MAX,
            capture,
            fstats: FaultStats::default(),
            #[cfg(feature = "validate")]
            air: AirLedger::default(),
            in_blackout: vec![false; num_aps],
            pending_detect: FxHashMap::default(),
            detect_done: FxHashSet::default(),
            fault_outage: None,
            client_covered: false,
            prev_connected: false,
            started: false,
            cfg,
        }
    }

    /// Immutable access to the client system.
    pub fn client(&self) -> &C {
        &self.client
    }

    /// The number of hardware channel switches so far.
    pub fn switch_count(&self) -> u64 {
        self.radio.switch_count()
    }

    /// Simulated time of the last processed event (t=0 before any).
    pub fn now(&self) -> SimTime {
        self.queue.now()
    }

    /// Events processed so far (continues into [`RunResult::events`], so
    /// a forked run reports the same total as a cold one; prefix-sharing
    /// schedulers measure *actual* work as deltas of this counter).
    pub fn events_processed(&self) -> u64 {
        self.events
    }

    /// The fault plan this world is running under.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.cfg.faults
    }

    /// Start writing delivered frames to a capture file from this point
    /// on (`limit` 0 = unlimited). Capture handles are the one piece of
    /// world state a snapshot cannot carry (an open file is not
    /// cloneable), so forks come up captureless and tests that compare
    /// capture timelines arm a fresh writer on the fork — its records
    /// must match the cold run's suffix exactly.
    pub fn arm_capture(&mut self, path: &std::path::Path, limit: u64) -> std::io::Result<()> {
        self.capture = Some(CaptureWriter::create(path, limit)?);
        self.cfg.capture = Some((path.to_path_buf(), limit));
        Ok(())
    }

    fn client_pos(&self, now: SimTime) -> Position {
        self.path.position(now)
    }

    fn distance_to_ap(&self, now: SimTime, ap: usize) -> f64 {
        self.client_pos(now).distance_to(self.aps[ap].position)
    }

    fn distance_sq_to_ap(&self, now: SimTime, ap: usize) -> f64 {
        self.client_pos(now).distance_sq_to(self.aps[ap].position)
    }

    /// Run the simulation to completion and produce the result.
    pub fn run(self) -> RunResult {
        self.run_with().0
    }

    /// Run to completion, returning the result *and* the client system
    /// for post-run introspection (utility tables, lease caches, ...).
    pub fn run_with(self) -> (RunResult, C) {
        self.finish()
    }

    /// Schedule the t=0 bootstrap events exactly once.
    fn start(&mut self) {
        if self.started {
            return;
        }
        self.started = true;
        self.queue.schedule(SimTime::ZERO, Ev::MobilityCheck);
        self.queue.schedule(SimTime::ZERO, Ev::ClientWake);
        self.client_wake_scheduled = SimTime::ZERO;
    }

    /// Advance the simulation through every event firing at or before
    /// `limit` (clamped to the configured duration), then stop with the
    /// world live — ready for [`World::snapshot`]/[`World::fork`],
    /// further `run_until` calls, or [`World::finish`].
    ///
    /// Checkpointing hinges on this being a pure reordering of the cold
    /// run's work: the bounded pop drains the exact `(at, seq)` prefix
    /// an uninterrupted run would have popped, so `run_until(t)` +
    /// `finish()` is bit-identical to a straight `run()`.
    pub fn run_until(&mut self, limit: SimTime) {
        self.start();
        let limit = limit.min(SimTime::ZERO + self.cfg.duration);
        while let Some(ev) = self.queue.pop_before(limit) {
            let now = ev.at;
            self.events += 1;
            if self.dispatch(now, ev.event) {
                self.after_event(now);
            }
        }
    }

    /// Run from the current point (t=0 for a fresh world, the snapshot
    /// point for a fork) to completion and produce the result.
    pub fn finish(mut self) -> (RunResult, C) {
        self.start();
        let end = SimTime::ZERO + self.cfg.duration;
        while let Some(ev) = self.queue.pop() {
            let now = ev.at;
            if now > end {
                // Popped but never dispatched: for the ledger this frame
                // is still in flight, like everything left in the queue.
                #[cfg(feature = "validate")]
                self.air_note_in_flight(&ev.event);
                break;
            }
            self.events += 1;
            // Only events actually delivered into the client system can
            // change what after_event observes (delivered bytes,
            // connectivity, the driver's next wakeup): every quantity it
            // reads is client state, and the interval tracker ignores
            // same-value sets. Skipping the call for AP-side events,
            // housekeeping, and frames the radio never heard leaves
            // every recorded metric and the event schedule bit-identical.
            if self.dispatch(now, ev.event) {
                self.after_event(now);
            }
        }
        let duration = self.cfg.duration;
        let bytes = self.client.delivered_bytes();
        let mut tcp_timeouts = 0;
        let mut tcp_retransmits = 0;
        for ap in &self.aps {
            tcp_timeouts += ap.tcp_timeouts;
            tcp_retransmits += ap.tcp_retransmits;
            // Commutative sums: order of visitation cannot change them.
            // lint:allow(hash-iter)
            for (_, s) in ap.senders.values() {
                tcp_timeouts += s.timeouts;
                tcp_retransmits += s.retransmits;
            }
        }
        if let Some(cap) = self.capture.take() {
            cap.finish().expect("flush capture file");
        }
        #[cfg(feature = "validate")]
        self.audit_invariants();
        let result = RunResult {
            label: self.client.label(),
            duration,
            bytes,
            avg_throughput_bps: self.rate.average_throughput(end),
            connectivity: self.rate.connectivity_fraction(end),
            instantaneous_bps: spider_simcore::Cdf::from_samples(self.rate.instantaneous_rates()),
            intervals: self.conn.finish(end),
            join_log: self.client.join_log().clone(),
            switches: self.radio.switch_count(),
            aps_encountered: self.encountered.len(),
            tcp_timeouts,
            tcp_retransmits,
            faults: self.fstats,
            events: self.events,
        };
        (result, self.client)
    }

    /// Count an undispatched event against the air ledger's in-flight
    /// column (validate builds only).
    #[cfg(feature = "validate")]
    fn air_note_in_flight(&mut self, ev: &Ev) {
        if matches!(ev, Ev::AirToClient { .. } | Ev::AirToAp { .. }) {
            self.air.in_flight += 1;
        }
    }

    /// Run-end invariant audit (validate builds only, DESIGN.md §11):
    /// frame conservation and fault-counter consistency.
    ///
    /// # Panics
    ///
    /// Panics if any invariant fails — a validate-build failure here is
    /// a simulator bug, never a workload property.
    #[cfg(feature = "validate")]
    fn audit_invariants(&mut self) {
        // Frame conservation. Everything still queued is in flight.
        while let Some(ev) = self.queue.pop() {
            self.air_note_in_flight(&ev.event);
        }
        assert_eq!(
            self.air.created,
            self.air.delivered + self.air.dropped + self.air.in_flight,
            "air-frame conservation violated: {:?}",
            self.air
        );
        // Fault counters can only move when a fault plan is armed.
        if self.findex.is_empty() {
            assert_eq!(
                self.fstats.total_drops(),
                0,
                "fault drop counters moved without a fault plan: {:?}",
                self.fstats
            );
            assert_eq!(
                self.fstats.ap_reboots, 0,
                "AP reboots recorded without a fault plan"
            );
            assert!(
                self.fstats.detect_times_s.is_empty() && self.fstats.recover_times_s.is_empty(),
                "fault timing samples recorded without a fault plan"
            );
        }
        // Per-class attribution stays parallel to the timing samples.
        assert_eq!(
            self.fstats.detect_times_s.len(),
            self.fstats.detect_kinds.len(),
            "detect-kind attribution out of sync with detect timings"
        );
        // Timing samples are durations: finite and non-negative always.
        for &t in self
            .fstats
            .detect_times_s
            .iter()
            .chain(&self.fstats.recover_times_s)
        {
            assert!(
                t.is_finite() && t >= 0.0,
                "fault timing sample out of range: {t}"
            );
        }
    }

    fn after_event(&mut self, now: SimTime) {
        // One fused snapshot instead of three separate client walks;
        // drivers with per-interface state answer it from a cache.
        let obs = self.client.observe(now);
        // Throughput accounting.
        let delivered = obs.delivered_bytes;
        if delivered > self.delivered_prev {
            self.rate.record(now, delivered - self.delivered_prev);
            self.delivered_prev = delivered;
        }
        // Connectivity signal.
        let connected = obs.connected;
        self.conn.set(now, connected);
        // Time-to-recover: a connectivity drop that coincides with an
        // active data-plane fault *within radio range* opens an outage;
        // the next restored connectivity closes it. Two rules keep the
        // sample honest on a drive: a blackout on an AP the client
        // cannot even hear does not turn a natural coverage gap into a
        // "recovery" measurement, and the clock only accrues while a
        // candidate AP is in range — time spent driving through open
        // country is mobility, not recovery latency.
        if !self.findex.is_empty() {
            if self.prev_connected
                && !connected
                && self.fault_outage.is_none()
                && self.data_fault_in_range(now)
            {
                self.fault_outage = Some((SimDuration::ZERO, self.client_covered.then_some(now)));
            } else if connected {
                if let Some((mut accrued, span)) = self.fault_outage.take() {
                    if let Some(since) = span {
                        accrued += now.saturating_since(since);
                    }
                    self.fstats.recover_times_s.push(accrued.as_secs_f64());
                }
            }
        }
        self.prev_connected = connected;
        // Client wakeup maintenance.
        let nw = obs.next_wakeup.max(now);
        if nw < self.client_wake_scheduled && nw < SimTime::MAX {
            self.queue.schedule(nw, Ev::ClientWake);
            self.client_wake_scheduled = nw;
        }
    }

    /// Deliver one event. Returns whether the client system was driven
    /// (and so [`World::after_event`] must re-inspect its state).
    fn dispatch(&mut self, now: SimTime, ev: Ev) -> bool {
        match ev {
            Ev::ClientWake => {
                self.client_wake_scheduled = SimTime::MAX;
                let mut actions = std::mem::take(&mut self.actions_scratch);
                actions.clear();
                self.client.poll_into(now, &mut actions);
                self.process_actions(now, &mut actions);
                self.actions_scratch = actions;
                true
            }
            Ev::SwitchDone(ch) => {
                if self.radio.listening_on(now) == Some(ch) {
                    let mut actions = std::mem::take(&mut self.actions_scratch);
                    actions.clear();
                    self.client.on_switch_complete_into(now, ch, &mut actions);
                    self.process_actions(now, &mut actions);
                    self.actions_scratch = actions;
                }
                true
            }
            Ev::ApWake(i) => {
                self.aps[i].wake_scheduled = SimTime::MAX;
                self.ap_wake(now, i);
                false
            }
            Ev::AirToClient { frame, channel, ap } => {
                // A frame on a channel the radio isn't tuned to never
                // reaches the driver, so it cannot have changed any
                // client state for after_event to observe.
                if self.radio.listening_on(now) != Some(channel) {
                    #[cfg(feature = "validate")]
                    {
                        self.air.dropped += 1;
                    }
                    return false;
                }
                #[cfg(feature = "validate")]
                {
                    self.air.delivered += 1;
                }
                if let Some(cap) = &mut self.capture {
                    cap.record(now, Direction::ToClient, &frame).ok();
                }
                // RSSI only rides on scanning frames (see `RxFrame`);
                // computing the log-distance model per TCP segment would
                // be pure waste.
                let rssi = matches!(
                    frame.body,
                    FrameBody::Beacon { .. } | FrameBody::ProbeResponse { .. }
                )
                .then(|| self.cfg.propagation.rssi_dbm(self.distance_to_ap(now, ap)));
                let rx = RxFrame {
                    frame: &frame,
                    channel,
                    rssi_dbm: rssi,
                };
                let passive_beacon = rx.frame.dst == MacAddr::BROADCAST
                    && matches!(rx.frame.body, FrameBody::Beacon { .. });
                let mut actions = std::mem::take(&mut self.actions_scratch);
                actions.clear();
                self.client.on_frame_into(now, &rx, &mut actions);
                if passive_beacon && actions.is_empty() {
                    // An overheard broadcast beacon that provoked no
                    // actions only fed the client's passive scan table
                    // (see the `ClientSystem::on_frame` contract) — none
                    // of the quantities after_event reads moved.
                    self.actions_scratch = actions;
                    return false;
                }
                self.process_actions(now, &mut actions);
                self.actions_scratch = actions;
                true
            }
            Ev::AirToAp { ap, frame } => {
                if self.findex.blackout(now, ap) {
                    // A powered-off AP hears nothing.
                    self.fstats.frames_dropped_blackout += 1;
                    self.note_fault_bite(now, ap);
                    #[cfg(feature = "validate")]
                    {
                        self.air.dropped += 1;
                    }
                    return false;
                }
                #[cfg(feature = "validate")]
                {
                    self.air.delivered += 1;
                }
                if let Some(cap) = &mut self.capture {
                    cap.record(now, Direction::ToAp, &frame).ok();
                }
                let mut evs = std::mem::take(&mut self.ap_ev_scratch);
                evs.clear();
                self.aps[ap].mac.on_frame_into(now, &frame, &mut evs);
                self.process_ap_events_drain(now, ap, &mut evs);
                self.ap_ev_scratch = evs;
                false
            }
            Ev::ServerRx { ap, packet } => {
                self.server_rx(now, ap, *packet);
                false
            }
            Ev::Downlink {
                ap,
                dst,
                packet,
                bufferable,
            } => {
                let mut evs = std::mem::take(&mut self.ap_ev_scratch);
                evs.clear();
                self.aps[ap]
                    .mac
                    .enqueue_downlink_into(now, dst, *packet, bufferable, &mut evs);
                self.process_ap_events_drain(now, ap, &mut evs);
                self.ap_ev_scratch = evs;
                false
            }
            Ev::MobilityCheck => {
                self.mobility_check(now);
                let next = now + SimDuration::from_millis(250);
                if next <= SimTime::ZERO + self.cfg.duration {
                    self.queue.schedule(next, Ev::MobilityCheck);
                }
                false
            }
        }
    }

    fn mobility_check(&mut self, now: SimTime) {
        // Grid query instead of a scan over every site: cost scales with
        // the APs near the client, not the deployment size. The query
        // returns ascending ids — the same order the old linear scan
        // visited them — so activation-driven scheduling (and therefore
        // event sequence numbers) is unchanged.
        let horizon = self.cfg.propagation.range_m + self.cfg.activation_margin_m;
        let pos = self.client_pos(now);
        let mut nearby = std::mem::take(&mut self.nearby_scratch);
        self.grid.within_into(pos, horizon, &mut nearby);
        // Deactivate APs that left the horizon: only the previously
        // active set needs checking, and membership in the new nearby
        // set is a merge of two ascending lists.
        let mut prev = std::mem::take(&mut self.active_ids);
        let mut n = nearby.iter().peekable();
        for &i in &prev {
            while n.next_if(|&&x| x < i).is_some() {}
            if n.peek() != Some(&&i) {
                self.aps[i].active = false;
            }
        }
        let mut covered = false;
        for &i in &nearby {
            if !self.aps[i].active {
                self.aps[i].active = true;
                self.aps[i].mac.resync_beacons(now);
                self.schedule_ap_wake(now, i, now);
            }
            if self
                .cfg
                .propagation
                .in_range_sq(pos.distance_sq_to(self.aps[i].position))
            {
                self.encountered.insert(i);
                // Coverage for the recovery clock means a *usable*
                // candidate: an in-range AP on a channel this client
                // never visits cannot end an outage.
                if self.client.can_use_channel(self.aps[i].channel) {
                    covered = true;
                }
            }
        }
        // The nearby list *is* the new active set; recycle the old one
        // as next sweep's query scratch.
        prev.clear();
        self.nearby_scratch = prev;
        self.active_ids = nearby;
        self.set_coverage(now, covered);
        if !self.findex.is_empty() {
            self.fault_sweep(now);
        }
    }

    /// Track radio-coverage transitions for the recovery clock: an open
    /// fault outage accrues recovery time only across covered spans.
    fn set_coverage(&mut self, now: SimTime, covered: bool) {
        if covered == self.client_covered {
            return;
        }
        self.client_covered = covered;
        if let Some((accrued, span)) = &mut self.fault_outage {
            if covered {
                *span = Some(now);
            } else if let Some(since) = span.take() {
                *accrued += now.saturating_since(since);
            }
        }
    }

    /// Is a data-plane fault active on any AP currently within radio
    /// range of the client — on a channel the client actually uses?
    /// Only such a fault can plausibly cause (or prolong) a
    /// connectivity outage the client is experiencing.
    fn data_fault_in_range(&self, now: SimTime) -> bool {
        self.active_ids.iter().any(|&i| {
            self.findex.data_fault_at(now, i).is_some()
                && self.client.can_use_channel(self.aps[i].channel)
        })
    }

    /// Periodic fault bookkeeping: AP reboots at blackout end, and
    /// arming of time-to-detect measurements while a data-plane fault
    /// covers an AP with associated clients.
    fn fault_sweep(&mut self, now: SimTime) {
        // Only APs with scheduled episodes can change fault state; the
        // index lists them in ascending order, so the sweep's scheduling
        // side effects happen in the same order a full scan would
        // produce (episode-free APs schedule nothing).
        for idx in 0..self.findex.faulty_aps().len() {
            let i = self.findex.faulty_aps()[idx];
            let black = self.findex.blackout(now, i);
            if self.in_blackout[i] && !black {
                // Power restored: the AP reboots with empty association
                // state, so lingering clients must re-join from scratch.
                self.aps[i].mac.reset_associations();
                self.fstats.ap_reboots += 1;
                if self.aps[i].active {
                    self.aps[i].mac.resync_beacons(now);
                    self.schedule_ap_wake(now, i, now);
                }
            }
            self.in_blackout[i] = black;
            match self.findex.data_fault_at(now, i) {
                Some((start, kind)) => {
                    if self.aps[i].mac.client_count() > 0
                        && !self.pending_detect.contains_key(&i)
                        && !self.detect_done.contains(&(i, start))
                    {
                        // If the client was already associated when the
                        // episode began (first sweep after `start`), its
                        // probes were flowing and the detection clock
                        // starts at the true onset. A client that joins
                        // mid-episode (zombies accept joins) cannot
                        // observe the fault until its data plane is up
                        // and a probe actually dies, so the clock starts
                        // lazily at the first swallowed packet —
                        // otherwise association and DHCP time would be
                        // charged against the ping monitor's budget.
                        let onset = if now.saturating_since(start) <= SimDuration::from_millis(500)
                        {
                            Some(start)
                        } else {
                            None
                        };
                        self.pending_detect.insert(i, (start, onset, kind));
                    }
                }
                None => {
                    self.pending_detect.remove(&i);
                }
            }
        }
    }

    /// The fault on `ap` just swallowed a client packet: if an armed
    /// detection measurement is still waiting for its clock to start,
    /// this is the moment the fault became observable.
    fn note_fault_bite(&mut self, now: SimTime, ap: usize) {
        if let Some((_, onset @ None, _)) = self.pending_detect.get_mut(&ap) {
            *onset = Some(now);
        }
    }

    /// The client tore down its link to `ap` (deauth) while a
    /// detection measurement was armed: record the latency.
    fn note_fault_detect(&mut self, now: SimTime, ap: usize) {
        if let Some((start, onset, kind)) = self.pending_detect.remove(&ap) {
            self.detect_done.insert((ap, start));
            // An armed clock that never started means nothing was
            // swallowed before the deauth — the fault was torn down
            // the instant it became observable.
            let onset = onset.unwrap_or(now);
            self.fstats
                .record_detect(now.saturating_since(onset).as_secs_f64(), kind);
        }
    }

    fn schedule_ap_wake(&mut self, now: SimTime, i: usize, at: SimTime) {
        let at = at.max(now);
        if at < self.aps[i].wake_scheduled && at <= SimTime::ZERO + self.cfg.duration {
            self.queue.schedule(at, Ev::ApWake(i));
            self.aps[i].wake_scheduled = at;
        }
    }

    fn ap_wake(&mut self, now: SimTime, i: usize) {
        // Beacons (only while active — an AP beyond the horizon still
        // beacons physically, but nothing can hear it).
        if self.aps[i].active {
            let mut evs = std::mem::take(&mut self.ap_ev_scratch);
            evs.clear();
            self.aps[i].mac.poll_into(now, &mut evs);
            self.process_ap_events_drain(now, i, &mut evs);
            self.ap_ev_scratch = evs;
        }
        // TCP sender timers (run regardless of radio range: the wired
        // side keeps its own clock). Most APs never carry a flow, so the
        // port walk is gated on having any senders at all.
        if !self.aps[i].senders.is_empty() {
            self.poll_ap_senders(now, i);
        }
        // Re-arm.
        let mut next = if self.aps[i].active {
            self.aps[i].mac.next_wakeup()
        } else {
            SimTime::MAX
        };
        // Commutative min: order of visitation cannot change it.
        // lint:allow(hash-iter)
        for (_, s) in self.aps[i].senders.values() {
            next = next.min(s.next_wakeup());
        }
        if next < SimTime::MAX {
            self.schedule_ap_wake(now, i, next);
        }
    }

    /// Run the per-flow TCP sender timers of AP `i` and sweep dead flows.
    fn poll_ap_senders(&mut self, now: SimTime, i: usize) {
        let mut ports = std::mem::take(&mut self.ports_scratch);
        ports.clear();
        ports.extend(self.aps[i].senders.keys().copied());
        // Canonical walk order: sender polls can schedule events, so the
        // sequence must come from the ports themselves, never from the
        // map's iteration order.
        ports.sort_unstable();
        let mut segs = std::mem::take(&mut self.segs_scratch);
        for &port in &ports {
            segs.clear();
            let (ip, sender) = self.aps[i].senders.get_mut(&port).unwrap();
            let client_ip = *ip;
            sender.poll_into(now, &mut segs);
            for &seg in &segs {
                self.backhaul_down_to(now, i, client_ip, seg);
            }
        }
        self.segs_scratch = segs;
        self.ports_scratch = ports;
        let (mut dead_to, mut dead_rx) = (0, 0);
        self.aps[i].senders.retain(|_, (_, s)| {
            if s.state() == TcpSenderState::Dead {
                dead_to += s.timeouts;
                dead_rx += s.retransmits;
                false
            } else {
                true
            }
        });
        self.aps[i].tcp_timeouts += dead_to;
        self.aps[i].tcp_retransmits += dead_rx;
    }

    fn process_actions(&mut self, now: SimTime, actions: &mut Vec<DriverAction>) {
        for action in actions.drain(..) {
            match action {
                DriverAction::Transmit { frame, .. } => {
                    if let Some(ch) = self.radio.listening_on(now) {
                        self.transmit_from_client(now, ch, frame);
                    }
                    // A transmit requested mid-switch is silently dropped:
                    // the hardware queue is held in reset.
                }
                DriverAction::SwitchChannel(ch) => {
                    let done = self.radio.start_switch(
                        now,
                        ch,
                        &self.cfg.phy,
                        self.client.associated_interfaces(),
                    );
                    self.queue.schedule(done.max(now), Ev::SwitchDone(ch));
                }
            }
        }
    }

    /// Decide delivery of a unicast frame over a link with raw loss
    /// probability `p`, modelling MAC-layer ARQ: the frame is lost only
    /// if all attempts fail, and the medium pays for the expected number
    /// of transmissions.
    fn unicast_outcome(&mut self, p: f64) -> (bool, f64) {
        let k = self.cfg.mac_retries.max(1);
        let residual = p.powi(k as i32);
        let delivered = !self.rng_loss.chance(residual);
        // Expected transmissions (capped at k): (1 - p^k) / (1 - p).
        let expected_tx = if p >= 1.0 {
            k as f64
        } else {
            ((1.0 - residual) / (1.0 - p)).min(k as f64)
        };
        (delivered, expected_tx)
    }

    fn airtime(&self, frame: &Frame) -> SimDuration {
        match frame.kind() {
            FrameKind::Management | FrameKind::Control => {
                self.cfg.phy.mgmt_airtime(frame.wire_size())
            }
            FrameKind::Data => self.cfg.phy.airtime(frame.wire_size()),
        }
    }

    fn transmit_from_client(&mut self, now: SimTime, ch: Channel, frame: Frame) {
        // A client deauth is the driver declaring the link dead — the
        // moment a fault-detection measurement (if armed) completes.
        if matches!(frame.body, FrameBody::Deauth { .. }) {
            if let Some(&i) = self.bssid_index.get(&frame.dst) {
                self.note_fault_detect(now, i);
            }
        }
        let airtime = self.airtime(&frame);
        let (start, end) = self.medium.reserve(now, ch, airtime);
        let pos = self.client_pos(start);
        let broadcast = frame.dst.is_broadcast();
        // Broadcast candidates come from the spatial grid: anything
        // beyond radio range can neither receive nor consume a loss
        // draw, so querying at `range_m` visits exactly the APs the old
        // full scan would have delivered to, in the same ascending
        // order (the RNG draw sequence is unchanged). One behavioural
        // delta, deliberate: active-but-out-of-range blacked-out APs no
        // longer bump `frames_dropped_blackout` — they could never have
        // received the frame anyway.
        let mut targets = std::mem::take(&mut self.targets_scratch);
        if broadcast {
            self.grid
                .within_into(pos, self.cfg.propagation.range_m, &mut targets);
            targets.retain(|&i| self.aps[i].active && self.aps[i].channel == ch);
        } else {
            targets.clear();
            if let Some(&i) = self.bssid_index.get(&frame.dst) {
                if self.aps[i].channel == ch {
                    targets.push(i);
                }
            }
        }
        // Broadcast wraps the frame once and each recipient shares it;
        // unicast has exactly one recipient, so the frame rides inline
        // (and a lost frame never touches the heap at all).
        let mut frame = Some(frame);
        let shared: Option<SharedFrame> = if broadcast {
            Some(Arc::new(frame.take().expect("frame unmoved")))
        } else {
            None
        };
        let mut extra_airtime = 0.0f64;
        for &i in &targets {
            if self.findex.blackout(start, i) {
                // A powered-off AP cannot receive.
                self.fstats.frames_dropped_blackout += 1;
                self.note_fault_bite(start, i);
                continue;
            }
            // Squared distance everywhere: the disk test and the flat
            // region of the loss model never need the root.
            let d2 = pos.distance_sq_to(self.aps[i].position);
            if !self.cfg.propagation.in_range_sq(d2) {
                continue;
            }
            let mut p = self
                .cfg
                .loss
                .loss_probability_sq(d2, self.cfg.propagation.range_m);
            // Client → AP frames ride the *up* leg: symmetric bursts
            // plus the `up` side of any directional-loss episode.
            let burst = self.findex.extra_loss_up(start, i);
            if burst > 0.0 {
                p = 1.0 - (1.0 - p) * (1.0 - burst);
            }
            let delivered = if broadcast {
                !self.rng_loss.chance(p)
            } else {
                let (ok, expected_tx) = self.unicast_outcome(p);
                extra_airtime += (expected_tx - 1.0).max(0.0);
                ok
            };
            if !delivered {
                if self.findex.asym_active(start, i) {
                    self.fstats.uplink_dropped_asym += 1;
                    self.note_fault_bite(start, i);
                }
                continue;
            }
            let payload = match &shared {
                Some(s) => AirFrame::Shared(Arc::clone(s)),
                None => AirFrame::owned(frame.take().expect("unicast delivers at most once")),
            };
            #[cfg(feature = "validate")]
            {
                self.air.created += 1;
            }
            self.queue.schedule(
                end,
                Ev::AirToAp {
                    ap: i,
                    frame: payload,
                },
            );
        }
        self.targets_scratch = targets;
        if extra_airtime > 0.0 {
            // Retries occupy the medium after the primary transmission.
            self.medium.reserve(end, ch, airtime.mul_f64(extra_airtime));
        }
    }

    fn transmit_from_ap(&mut self, now: SimTime, ap: usize, frame: AirFrame) {
        if self.findex.blackout(now, ap) {
            // A powered-off AP transmits nothing (beacons included).
            self.fstats.frames_dropped_blackout += 1;
            return;
        }
        let airtime = self.airtime(&frame);
        let ch = self.aps[ap].channel;
        let (start, end) = self.medium.reserve(now, ch, airtime);
        let d2 = self.distance_sq_to_ap(start, ap);
        if !self.cfg.propagation.in_range_sq(d2) {
            return;
        }
        let mut p = self
            .cfg
            .loss
            .loss_probability_sq(d2, self.cfg.propagation.range_m);
        // AP → client frames ride the *down* leg.
        let burst = self.findex.extra_loss_down(start, ap);
        if burst > 0.0 {
            p = 1.0 - (1.0 - p) * (1.0 - burst);
        }
        let (delivered, expected_tx) = if frame.dst.is_broadcast() {
            (!self.rng_loss.chance(p), 1.0)
        } else {
            self.unicast_outcome(p)
        };
        if expected_tx > 1.0 {
            self.medium
                .reserve(end, ch, airtime.mul_f64(expected_tx - 1.0));
        }
        if !delivered {
            if self.findex.asym_active(start, ap) {
                self.fstats.downlink_dropped_asym += 1;
                self.note_fault_bite(start, ap);
            }
            return;
        }
        #[cfg(feature = "validate")]
        {
            self.air.created += 1;
        }
        self.queue.schedule(
            end,
            Ev::AirToClient {
                frame,
                channel: ch,
                ap,
            },
        );
    }

    /// Drain a batch of AP MAC events. Takes the buffer by `&mut` so
    /// hot callers can reuse one scratch `Vec` across batches.
    fn process_ap_events_drain(&mut self, now: SimTime, ap: usize, evs: &mut Vec<ApEvent>) {
        for ev in evs.drain(..) {
            match ev {
                ApEvent::Send(frame) => self.transmit_from_ap(now, ap, frame),
                ApEvent::DeliverUp { from, packet } => self.uplink(now, ap, from, packet),
                ApEvent::ClientAssociated(_) | ApEvent::ClientGone(_) => {}
            }
        }
    }

    /// An uplink packet from an associated client reached the AP's
    /// network side.
    fn uplink(&mut self, now: SimTime, ap: usize, from: MacAddr, packet: Ipv4Packet) {
        if !packet.src.is_unspecified() {
            self.aps[ap].arp.insert(packet.src, from);
        }
        match &packet.payload {
            L4::Dhcp(msg) => {
                if !self.aps[ap].dhcp_responsive {
                    return; // broken AP: DHCP silence
                }
                if self.findex.dhcp_silent(now, ap) {
                    self.fstats.dhcp_dropped_silent += 1;
                    return;
                }
                if self.findex.dhcp_exhausted(now, ap) {
                    // An exhausted pool ignores DISCOVER (nothing to
                    // offer) and NAKs REQUEST/INIT-REBOOT, telling the
                    // client its cached address is no good.
                    match msg.op {
                        DhcpOp::Request => {
                            self.fstats.dhcp_naks_exhausted += 1;
                            let gateway = self.aps[ap].dhcp.config().gateway;
                            let nak = DhcpMessage {
                                op: DhcpOp::Nak,
                                xid: msg.xid,
                                chaddr: msg.chaddr,
                                yiaddr: Ipv4Addr::UNSPECIFIED,
                                server_id: gateway,
                                lease: SimDuration::ZERO,
                            };
                            let dst_mac = msg.chaddr;
                            let reply = Ipv4Packet {
                                src: gateway,
                                dst: packet.src,
                                payload: L4::Dhcp(nak),
                            };
                            self.queue.schedule(
                                now + SimDuration::from_millis(1),
                                Ev::Downlink {
                                    ap,
                                    dst: dst_mac,
                                    packet: Box::new(reply),
                                    bufferable: self.cfg.psm_buffers_join_traffic,
                                },
                            );
                        }
                        _ => self.fstats.dhcp_dropped_silent += 1,
                    }
                    return;
                }
                let responses = self.aps[ap].dhcp.on_message(now, msg);
                for ds in responses {
                    if ds.msg.op == DhcpOp::Ack {
                        self.aps[ap].arp.insert(ds.msg.yiaddr, ds.msg.chaddr);
                    }
                    let gateway = self.aps[ap].dhcp.config().gateway;
                    let dst_mac = ds.msg.chaddr;
                    let reply = Ipv4Packet {
                        src: gateway,
                        dst: ds.msg.yiaddr,
                        payload: L4::Dhcp(ds.msg),
                    };
                    self.queue.schedule(
                        ds.at.max(now),
                        Ev::Downlink {
                            ap,
                            dst: dst_mac,
                            packet: Box::new(reply),
                            // Join traffic is not PSM-buffered (§2,
                            // DESIGN.md) — unless the counterfactual
                            // ablation knob says otherwise.
                            bufferable: self.cfg.psm_buffers_join_traffic,
                        },
                    );
                }
            }
            L4::Icmp(msg) => {
                if self.findex.zombie(now, ap) {
                    // A zombie AP forwards nothing, and its local
                    // gateway stops answering too: every liveness
                    // signal must die so the ping monitor fires.
                    self.fstats.packets_dropped_zombie += 1;
                    self.note_fault_bite(now, ap);
                    return;
                }
                if self.findex.arp_poisoned(now, ap) {
                    // Poisoned gateway mapping: every upstream unicast
                    // rides to the attacker's MAC and dies — including
                    // "gateway" pings, because the poisoned mapping IS
                    // the gateway. Association and DHCP stay green, so
                    // only the end-to-end monitor can notice.
                    self.fstats.frames_blackholed_arp += 1;
                    self.note_fault_bite(now, ap);
                    return;
                }
                if packet.dst == SERVER_IP {
                    if self.findex.captive_portal(now, ap) {
                        // The portal intercepts end-to-end ICMP (the
                        // walled garden answers nothing outside itself)
                        // while the gateway arm below keeps replying —
                        // exactly the trap that defeats the
                        // gateway-ping fallback.
                        self.fstats.packets_hijacked_portal += 1;
                        self.note_fault_bite(now, ap);
                        return;
                    }
                    if self.findex.icmp_filtered(now, ap) {
                        // Filtered gateway: end-to-end pings black-hole,
                        // the gateway itself (below) still answers.
                        self.fstats.icmp_dropped_filtered += 1;
                        return;
                    }
                    if let Some(reply) = msg.reply_to() {
                        let rtt = self.aps[ap].backhaul_latency * 2;
                        let pkt = Ipv4Packet {
                            src: SERVER_IP,
                            dst: packet.src,
                            payload: L4::Icmp(reply),
                        };
                        let dst_mac = from;
                        self.queue.schedule(
                            now + rtt,
                            Ev::Downlink {
                                ap,
                                dst: dst_mac,
                                packet: Box::new(pkt),
                                bufferable: true,
                            },
                        );
                    }
                } else if packet.dst == self.aps[ap].dhcp.config().gateway {
                    // Gateway answers pings locally (Spider falls back to
                    // pinging the gateway when end-to-end ICMP is
                    // filtered, §3.2.2).
                    if let Some(reply) = msg.reply_to() {
                        let pkt = Ipv4Packet {
                            src: packet.dst,
                            dst: packet.src,
                            payload: L4::Icmp(reply),
                        };
                        self.queue.schedule(
                            now + SimDuration::from_micros(500),
                            Ev::Downlink {
                                ap,
                                dst: from,
                                packet: Box::new(pkt),
                                bufferable: true,
                            },
                        );
                    }
                }
            }
            L4::Tcp(_) => {
                if self.findex.zombie(now, ap) {
                    self.fstats.packets_dropped_zombie += 1;
                    self.note_fault_bite(now, ap);
                    return;
                }
                if self.findex.arp_poisoned(now, ap) {
                    self.fstats.frames_blackholed_arp += 1;
                    self.note_fault_bite(now, ap);
                    return;
                }
                if self.findex.captive_portal(now, ap) {
                    // TCP to the outside world lands on the portal's
                    // redirect page: no payload ever comes back.
                    self.fstats.packets_hijacked_portal += 1;
                    self.note_fault_bite(now, ap);
                    return;
                }
                if packet.dst == SERVER_IP {
                    let latency = self.aps[ap].backhaul_latency;
                    self.queue.schedule(
                        now + latency,
                        Ev::ServerRx {
                            ap,
                            packet: Box::new(packet),
                        },
                    );
                }
            }
        }
    }

    /// An uplink TCP segment arrives at the wired server.
    fn server_rx(&mut self, now: SimTime, ap: usize, packet: Ipv4Packet) {
        let L4::Tcp(seg) = &packet.payload else {
            return;
        };
        let client_port = seg.src_port;
        // A fresh SYN replaces any stale sender for this port (a new
        // connection after the client reconnected).
        if seg.flags.syn && !seg.flags.ack {
            let needs_new = self.aps[ap]
                .senders
                .get(&client_port)
                .map(|(_, s)| {
                    s.state() != TcpSenderState::Listen && s.state() != TcpSenderState::SynReceived
                })
                .unwrap_or(true);
            if needs_new {
                let iss = self.aps[ap].iss_rng.next_u64() as u32;
                let sender = TcpSender::new(self.cfg.tcp.clone(), SERVER_PORT, client_port, iss);
                self.aps[ap]
                    .senders
                    .insert(client_port, (packet.src, sender));
            }
        }
        let Some((client_ip, sender)) = self.aps[ap].senders.get_mut(&client_port) else {
            return;
        };
        let client_ip = *client_ip;
        let mut out = std::mem::take(&mut self.segs_scratch);
        out.clear();
        sender.on_segment_into(now, seg, &mut out);
        let wake = sender.next_wakeup();
        for &seg_out in &out {
            self.backhaul_down_to(now, ap, client_ip, seg_out);
        }
        self.segs_scratch = out;
        if wake < SimTime::MAX {
            self.schedule_ap_wake(now, ap, wake);
        }
    }

    fn backhaul_down_to(
        &mut self,
        now: SimTime,
        ap: usize,
        client_ip: Ipv4Addr,
        seg: spider_wire::TcpSegment,
    ) {
        let bytes = (seg.wire_size() + Ipv4Packet::HEADER_SIZE) as f64;
        let node = &mut self.aps[ap];
        let free = node.backhaul_free_at.max(now);
        // Drop-tail if the backhaul queue is too deep.
        if free.saturating_since(now) > self.cfg.backhaul_queue_cap {
            return;
        }
        let tx_done = free + SimDuration::from_secs_f64(bytes / node.backhaul_bps);
        node.backhaul_free_at = tx_done;
        let deliver_at = tx_done + node.backhaul_latency;
        let dst_mac = node.arp.get(&client_ip).copied();
        let Some(dst) = dst_mac else { return };
        let packet = Ipv4Packet {
            src: SERVER_IP,
            dst: client_ip,
            payload: L4::Tcp(seg),
        };
        self.queue.schedule(
            deliver_at,
            Ev::Downlink {
                ap,
                dst,
                packet: Box::new(packet),
                bufferable: true,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::{lab_scenario, town_scenario, ScenarioParams};
    use spider_baselines::{StockConfig, StockDriver};
    use spider_core::{OperationMode, SpiderConfig, SpiderDriver};

    fn spider(mode: OperationMode) -> SpiderDriver {
        SpiderDriver::new(SpiderConfig::for_mode(mode, 1))
    }

    #[test]
    fn static_spider_connects_and_downloads() {
        let cfg = lab_scenario(&[Channel::CH1], 250_000.0, SimDuration::from_secs(30), 42);
        let world = World::new(
            cfg,
            spider(OperationMode::SingleChannelMultiAp(Channel::CH1)),
        );
        let result = world.run();
        assert!(!result.join_log.join.is_empty(), "{result}");
        assert!(
            result.bytes > 500_000,
            "expected a real download, got {} bytes",
            result.bytes
        );
        // Backhaul-limited: cannot beat 250 KB/s by much.
        assert!(result.avg_throughput_bps < 300_000.0, "{result}");
        assert!(result.connectivity > 0.5, "{result}");
        assert_eq!(result.aps_encountered, 1);
    }

    #[test]
    fn two_aps_on_one_channel_double_throughput() {
        // Fig. 10's core claim: Spider on two same-channel APs matches
        // two radios, i.e. ~2x the single-AP backhaul-limited rate.
        let backhaul = 125_000.0; // 1 Mb/s each
        let one = World::new(
            lab_scenario(&[Channel::CH1], backhaul, SimDuration::from_secs(30), 7),
            spider(OperationMode::SingleChannelMultiAp(Channel::CH1)),
        )
        .run();
        let two = World::new(
            lab_scenario(
                &[Channel::CH1, Channel::CH1],
                backhaul,
                SimDuration::from_secs(30),
                7,
            ),
            spider(OperationMode::SingleChannelMultiAp(Channel::CH1)),
        )
        .run();
        assert!(
            two.avg_throughput_bps > 1.6 * one.avg_throughput_bps,
            "one: {one}, two: {two}"
        );
    }

    #[test]
    fn runs_are_deterministic() {
        let mk = || {
            World::new(
                lab_scenario(&[Channel::CH1], 250_000.0, SimDuration::from_secs(20), 5),
                spider(OperationMode::SingleChannelMultiAp(Channel::CH1)),
            )
            .run()
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.bytes, b.bytes);
        assert_eq!(a.switches, b.switches);
        assert_eq!(a.join_log.join.len(), b.join_log.join.len());
    }

    #[test]
    fn stock_driver_connects_in_lab() {
        let cfg = lab_scenario(&[Channel::CH6], 250_000.0, SimDuration::from_secs(40), 9);
        let result = World::new(cfg, StockDriver::new(StockConfig::quickwifi(1))).run();
        assert!(!result.join_log.join.is_empty(), "{result}");
        assert!(result.bytes > 100_000, "{result}");
    }

    #[test]
    fn multichannel_spider_survives_switching() {
        // APs on two channels; the 3-channel rotation must still join
        // and move data on both.
        let cfg = lab_scenario(
            &[Channel::CH1, Channel::CH11],
            250_000.0,
            SimDuration::from_secs(40),
            11,
        );
        let result = World::new(
            cfg,
            spider(OperationMode::MultiChannelMultiAp {
                period: SimDuration::from_millis(600),
            }),
        )
        .run();
        assert!(result.switches > 50, "rotation must switch: {result}");
        assert!(!result.join_log.join.is_empty(), "{result}");
        assert!(result.bytes > 50_000, "{result}");
    }

    #[test]
    fn town_drive_produces_encounters_and_joins() {
        let params = ScenarioParams {
            duration: SimDuration::from_secs(300),
            seed: 3,
            ..Default::default()
        };
        let cfg = town_scenario(&params);
        let result = World::new(
            cfg,
            spider(OperationMode::SingleChannelMultiAp(Channel::CH6)),
        )
        .run();
        assert!(result.aps_encountered > 5, "{result}");
        assert!(!result.join_log.join.is_empty(), "{result}");
        assert!(result.bytes > 0, "{result}");
    }
}

#[cfg(test)]
mod capture_tests {
    use super::*;
    use crate::capture::{read_capture, Direction};
    use crate::scenarios::lab_scenario;
    use spider_core::{OperationMode, SpiderConfig, SpiderDriver};
    use spider_wire::FrameBody;

    #[test]
    fn world_capture_records_a_join_in_order() {
        let path = std::env::temp_dir().join("spider-world-capture.spdr");
        let mut cfg = lab_scenario(&[Channel::CH1], 250_000.0, SimDuration::from_secs(5), 3);
        cfg.capture = Some((path.clone(), 5_000));
        let driver = SpiderDriver::new(SpiderConfig::for_mode(
            OperationMode::SingleChannelMultiAp(Channel::CH1),
            1,
        ));
        let result = World::new(cfg, driver).run();
        assert!(result.bytes > 0);

        let records = read_capture(&path).unwrap();
        assert!(records.len() > 20, "{} records", records.len());
        // Timestamps are non-decreasing.
        assert!(records.windows(2).all(|w| w[0].at <= w[1].at));
        // The join handshake appears, in protocol order, before data.
        let pos =
            |pred: &dyn Fn(&FrameBody) -> bool| records.iter().position(|r| pred(&r.frame.body));
        let auth_req = pos(&|b| matches!(b, FrameBody::AuthRequest)).expect("auth req");
        let auth_resp = pos(&|b| matches!(b, FrameBody::AuthResponse { .. })).expect("auth resp");
        let assoc_resp =
            pos(&|b| matches!(b, FrameBody::AssocResponse { .. })).expect("assoc resp");
        let data = pos(&|b| matches!(b, FrameBody::Data { .. })).expect("data");
        assert!(auth_req < auth_resp && auth_resp < assoc_resp && assoc_resp < data);
        // Both directions occur.
        assert!(records.iter().any(|r| r.direction == Direction::ToClient));
        assert!(records.iter().any(|r| r.direction == Direction::ToAp));
        std::fs::remove_file(&path).ok();
    }
}

#[cfg(test)]
mod fault_injection_tests {
    use super::*;
    use crate::scenarios::{lab_scenario, town_scenario, ScenarioParams};
    use spider_core::{OperationMode, SpiderConfig, SpiderDriver};
    use spider_radio::LossModel;

    fn spider_ch1() -> SpiderDriver {
        SpiderDriver::new(SpiderConfig::for_mode(
            OperationMode::SingleChannelMultiAp(Channel::CH1),
            1,
        ))
    }

    #[test]
    fn total_loss_means_no_joins_and_no_data() {
        let mut cfg = lab_scenario(&[Channel::CH1], 250_000.0, SimDuration::from_secs(20), 4);
        cfg.loss = LossModel::Bernoulli { h: 1.0 };
        let result = World::new(cfg, spider_ch1()).run();
        assert_eq!(result.join_log.assoc.len(), 0);
        assert_eq!(result.bytes, 0);
        assert_eq!(result.connectivity, 0.0);
    }

    #[test]
    fn heavy_loss_still_makes_some_progress_with_mac_arq() {
        let mut cfg = lab_scenario(&[Channel::CH1], 250_000.0, SimDuration::from_secs(30), 4);
        cfg.loss = LossModel::Bernoulli { h: 0.30 };
        let result = World::new(cfg, spider_ch1()).run();
        // 30% raw loss with 4 ARQ attempts = 0.8% residual: joins and
        // data must still flow.
        assert!(!result.join_log.join.is_empty(), "{result}");
        assert!(result.bytes > 100_000, "{result}");
    }

    #[test]
    fn single_arq_attempt_restores_raw_loss_pain() {
        let mk = |retries: u32| {
            let mut cfg = lab_scenario(&[Channel::CH1], 500_000.0, SimDuration::from_secs(30), 4);
            cfg.loss = LossModel::Bernoulli { h: 0.10 };
            cfg.mac_retries = retries;
            World::new(cfg, spider_ch1()).run()
        };
        let with_arq = mk(4);
        let without = mk(1);
        assert!(
            with_arq.avg_throughput_bps > 1.5 * without.avg_throughput_bps,
            "ARQ {with_arq}; raw {without}"
        );
    }

    #[test]
    fn empty_deployment_is_silence_not_panic() {
        let mut params = ScenarioParams {
            duration: SimDuration::from_secs(60),
            seed: 5,
            density_per_km: 15.0,
            ..Default::default()
        };
        params.density_per_km = 0.0001; // effectively no APs
        let cfg = town_scenario(&params);
        let result = World::new(cfg, spider_ch1()).run();
        assert_eq!(result.bytes, 0);
        assert_eq!(result.aps_encountered, 0);
    }

    #[test]
    fn out_of_range_aps_are_never_heard() {
        // One AP 500m from a static client.
        let deployment = spider_mobility::Deployment::lab(
            vec![(Position::new(500.0, 0.0), Channel::CH1)],
            250_000.0,
        );
        let cfg = WorldConfig::new(
            MobilityModel::Static(Position::ORIGIN),
            deployment,
            SimDuration::from_secs(20),
            6,
        );
        let result = World::new(cfg, spider_ch1()).run();
        assert_eq!(result.aps_encountered, 0);
        assert_eq!(result.join_log.assoc.len(), 0);
    }
}

#[cfg(all(test, feature = "proptest-tests"))]
mod determinism_props {
    use super::*;
    use crate::scenarios::lab_scenario;
    use proptest::prelude::*;
    use spider_core::{OperationMode, SpiderConfig, SpiderDriver};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]
        /// Any (seed, backhaul) pair yields bit-identical runs: the whole
        /// pipeline is a pure function of its inputs.
        #[test]
        fn world_is_a_pure_function_of_its_inputs(
            seed in 0u64..1_000,
            backhaul_kbps in 50u64..500,
        ) {
            let run = || {
                let cfg = lab_scenario(
                    &[Channel::CH1],
                    backhaul_kbps as f64 * 1_000.0,
                    SimDuration::from_secs(10),
                    seed,
                );
                World::new(
                    cfg,
                    SpiderDriver::new(SpiderConfig::for_mode(
                        OperationMode::SingleChannelMultiAp(Channel::CH1),
                        1,
                    )),
                )
                .run()
            };
            let a = run();
            let b = run();
            prop_assert_eq!(a.bytes, b.bytes);
            prop_assert_eq!(a.tcp_retransmits, b.tcp_retransmits);
            prop_assert_eq!(a.join_log.join.len(), b.join_log.join.len());
            // And throughput never exceeds what the backhaul can carry
            // (plus a small burst tolerance for the first window).
            prop_assert!(
                a.avg_throughput_bps <= backhaul_kbps as f64 * 1_000.0 * 1.10 + 1.0,
                "throughput {} exceeds backhaul {}",
                a.avg_throughput_bps,
                backhaul_kbps * 1_000
            );
        }
    }
}
