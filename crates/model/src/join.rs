//! The join-probability model (Eqs. 1–7).
//!
//! A mobile node on a round-robin schedule with period `D` spends `f_i·D`
//! per round on channel *i*, paying a switch cost `w`. While on the
//! channel it transmits a join request every `c` seconds; the AP's
//! response takes `β ~ U(βmin, βmax)`; each direction independently
//! survives with probability `1-h`. A request from segment `k` of round
//! `m` succeeds iff its response lands inside the on-channel window of
//! some round `n ≥ m` (Eq. 3). The model composes per-request success
//! probabilities (Eq. 5) into per-round-pair failure probabilities
//! (Eq. 6) and finally the join probability within `t` seconds (Eq. 7).

/// Model parameters (all times in seconds).
#[derive(Debug, Clone)]
pub struct JoinModel {
    /// Scheduling period `D`.
    pub d: f64,
    /// Inter-request spacing `c` (set by DHCP/link-layer timers).
    pub c: f64,
    /// Channel-switch overhead `w`.
    pub w: f64,
    /// Minimum AP response time `βmin`.
    pub beta_min: f64,
    /// Maximum AP response time `βmax`.
    pub beta_max: f64,
    /// Frame-loss probability `h`.
    pub h: f64,
}

impl JoinModel {
    /// The parameter set used for Fig. 2: D = 500 ms, c = 100 ms,
    /// w = 7 ms, βmin = 500 ms, h = 10 %.
    pub fn paper_defaults(beta_max: f64) -> JoinModel {
        JoinModel {
            d: 0.5,
            c: 0.1,
            w: 0.007,
            beta_min: 0.5,
            beta_max,
            h: 0.1,
        }
    }

    /// Number of request segments per round for a given `f_i` (the upper
    /// bound of the product in Eq. 6).
    pub fn segments(&self, fi: f64) -> usize {
        let usable = self.d * fi - self.w;
        if usable <= 0.0 {
            0
        } else {
            (usable / self.c).ceil() as usize
        }
    }

    /// Eq. 5: probability that the request sent in segment `k`
    /// (1-indexed) of round `m` is answered within the on-channel window
    /// of round `n ≥ m`, on a lossless channel.
    pub fn q_success(&self, m: usize, n: usize, k: usize, fi: f64) -> f64 {
        assert!(n >= m && k >= 1);
        let kf = k as f64;
        let nm = (n - m) as f64;
        let alpha_min = kf * self.c + self.beta_min;
        let alpha_max = kf * self.c + self.beta_max;
        let delta_min = nm * self.d + self.c - self.w;
        let delta_max = (nm + fi) * self.d + self.c - self.w;
        if delta_min > alpha_max || delta_max < alpha_min {
            return 0.0;
        }
        let lo = alpha_min.max(delta_min);
        let hi = alpha_max.min(delta_max);
        ((hi - lo) / (alpha_max - alpha_min)).clamp(0.0, 1.0)
    }

    /// Eq. 6: probability that **no** request from round `m` produces a
    /// successful join in round `n`, with loss `h` applied to both
    /// directions.
    pub fn q_round_failure(&self, m: usize, n: usize, fi: f64) -> f64 {
        let ok = (1.0 - self.h) * (1.0 - self.h);
        let mut prod = 1.0;
        for k in 1..=self.segments(fi) {
            prod *= 1.0 - self.q_success(m, n, k, fi) * ok;
        }
        prod
    }

    /// Eq. 7: probability of obtaining at least one lease within `t`
    /// seconds of entering the AP's range, spending fraction `fi` of each
    /// round on its channel.
    pub fn p_join(&self, fi: f64, t: f64) -> f64 {
        let rounds = (t / self.d).floor() as usize;
        if rounds == 0 || fi <= 0.0 {
            return 0.0;
        }
        let mut prod = 1.0;
        for m in 1..=rounds {
            for n in m..=rounds {
                prod *= self.q_round_failure(m, n, fi);
                if prod < 1e-12 {
                    return 1.0 - prod;
                }
            }
        }
        1.0 - prod
    }

    /// Expected *unjoined* fraction of an encounter of length `t`:
    /// `E[X]/t` where `E[X] = Σ_τ (1 − p(fi, τ))` is the expected time to
    /// join (clipped at `t`). This is the `E[X_i]` entering constraint
    /// Eq. 9 — the paper's text calls it "the expected amount of time to
    /// join", normalised here so `(1 − E[X_i])` is the fraction of the
    /// encounter during which a newly joined AP's bandwidth is usable.
    pub fn expected_join_fraction(&self, fi: f64, t: f64) -> f64 {
        let rounds = (t / self.d).floor() as usize;
        if rounds == 0 {
            return 1.0;
        }
        let mut expected_rounds = 0.0;
        for r in 0..rounds {
            expected_rounds += 1.0 - self.p_join(fi, (r + 1) as f64 * self.d);
        }
        (expected_rounds / rounds as f64).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> JoinModel {
        JoinModel::paper_defaults(5.0)
    }

    #[test]
    fn p_join_is_a_probability_and_monotone_in_fi() {
        let m = model();
        let mut prev = 0.0;
        for i in 1..=10 {
            let fi = i as f64 / 10.0;
            let p = m.p_join(fi, 4.0);
            assert!((0.0..=1.0).contains(&p), "p={p}");
            assert!(p >= prev - 1e-12, "not monotone at fi={fi}: {p} < {prev}");
            prev = p;
        }
    }

    #[test]
    fn p_join_monotone_in_time() {
        let m = model();
        let mut prev = 0.0;
        for t in 1..=16 {
            let p = m.p_join(0.3, t as f64);
            assert!(p >= prev - 1e-12);
            prev = p;
        }
    }

    #[test]
    fn full_time_on_channel_joins_reliably() {
        // The paper: "the node should spend nearly 100% of its time on the
        // channel for an assured successful join" (with t=4s, βmax=5s).
        let m = model();
        let p = m.p_join(1.0, 4.0);
        assert!(p > 0.9, "p(1.0, 4s) = {p}");
    }

    #[test]
    fn tiny_fraction_rarely_joins() {
        let m = model();
        let p = m.p_join(0.1, 4.0);
        assert!(p < 0.45, "p(0.1, 4s) = {p}");
    }

    #[test]
    fn paper_fig3_shape_shorter_beta_is_better() {
        // Fig. 3: for fixed fi, smaller βmax gives higher join probability.
        for fi in [0.1, 0.25, 0.4, 0.5] {
            let fast = JoinModel::paper_defaults(2.0).p_join(fi, 4.0);
            let slow = JoinModel::paper_defaults(10.0).p_join(fi, 4.0);
            assert!(fast >= slow - 1e-9, "fi={fi}: fast {fast} < slow {slow}");
        }
    }

    #[test]
    fn paper_fig3_large_beta_hurts_small_fractions_most() {
        // With βmax = 10s and fi = 0.1, joining within 4s is unlikely.
        let m = JoinModel::paper_defaults(10.0);
        assert!(m.p_join(0.10, 4.0) < 0.35);
        assert!(m.p_join(0.50, 4.0) > m.p_join(0.10, 4.0));
    }

    #[test]
    fn zero_fraction_never_joins() {
        let m = model();
        assert_eq!(m.p_join(0.0, 10.0), 0.0);
        assert_eq!(m.segments(0.0), 0);
    }

    #[test]
    fn no_rounds_no_join() {
        let m = model();
        assert_eq!(m.p_join(0.5, 0.3), 0.0); // t < D
    }

    #[test]
    fn segments_counts_requests_per_round() {
        let m = model();
        // fi=1: (0.5 - 0.007)/0.1 -> ceil(4.93) = 5 requests.
        assert_eq!(m.segments(1.0), 5);
        // fi=0.25: (0.125-0.007)/0.1 -> ceil(1.18) = 2.
        assert_eq!(m.segments(0.25), 2);
    }

    #[test]
    fn expected_join_fraction_decreases_with_fi() {
        let m = model();
        let slow = m.expected_join_fraction(0.1, 8.0);
        let fast = m.expected_join_fraction(0.9, 8.0);
        assert!(fast < slow, "fast {fast} !< slow {slow}");
        assert!((0.0..=1.0).contains(&fast));
        assert!((0.0..=1.0).contains(&slow));
    }

    #[test]
    fn q_success_respects_window_geometry() {
        let m = model();
        // A response needing >= βmin=0.5s cannot land in round m (window
        // ends at fi*D = 0.25s for fi=0.5... well plus c-w offset).
        let q_same_round = m.q_success(1, 1, 1, 0.5);
        // βmin=0.5: alpha in [0.6, 5.1]; window [0.093, 0.343] -> no overlap.
        assert_eq!(q_same_round, 0.0);
        // A later round can catch it.
        let q_next = m.q_success(1, 2, 1, 0.5);
        assert!(q_next > 0.0);
    }

    #[cfg(feature = "proptest-tests")]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
        /// q_success is always a valid probability.
        #[test]
        fn q_in_unit_interval(mn in 0usize..8, k in 1usize..6, fi in 0.01f64..1.0) {
            let m = model();
            let q = m.q_success(1, 1 + mn, k, fi);
            prop_assert!((0.0..=1.0).contains(&q));
        }

        /// q_round_failure is a probability and p_join is monotone in t.
        #[test]
        fn probabilities_are_sane(fi in 0.05f64..1.0, t in 0.5f64..10.0) {
            let m = model();
            let q = m.q_round_failure(1, 2, fi);
            prop_assert!((0.0..=1.0).contains(&q));
            let p1 = m.p_join(fi, t);
            let p2 = m.p_join(fi, t + 1.0);
            prop_assert!((0.0..=1.0).contains(&p1));
            prop_assert!(p2 >= p1 - 1e-12);
        }
        }
    }
}
