//! Multi-AP selection (Appendix A).
//!
//! The paper proves selecting the utility-maximal set of AP subsets is
//! NP-hard by reduction from 0-1 knapsack: each candidate subset `S_i`
//! has value `V_i = T_i · W_i` (time in range × bandwidth) and cost
//! `C_i = T_i + ⌈T_i/T⌉ · D_i` (time plus switching/queueing overhead),
//! under a total budget `T`. This module provides:
//!
//! * [`optimal_select`] — an exact solver (dynamic programming over a
//!   discretised cost budget), exponential-free but pseudo-polynomial:
//!   fine for the small instances a client faces, and a ground truth for
//!   evaluating heuristics,
//! * [`greedy_select`] — the cheap heuristic family Spider's
//!   utility-based selection belongs to (rank by a score, take while the
//!   budget lasts),
//! * the knapsack construction itself, exercised by tests as a living
//!   proof sketch: any knapsack instance maps to an AP-selection
//!   instance, so a polynomial AP selector would solve knapsack.

/// One candidate AP (or AP subset, in the appendix's formulation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApOption {
    /// Value `V_i = T_i · W_i` (bytes attainable over the encounter).
    pub value: f64,
    /// Cost `C_i = T_i + ⌈T_i/T⌉·D_i` (radio time consumed).
    pub cost: f64,
}

impl ApOption {
    /// Build from the appendix's raw quantities: time in range `t_i`,
    /// bandwidth `w_i`, overhead `d_i`, total budget `t`.
    pub fn from_encounter(t_i: f64, w_i: f64, d_i: f64, t: f64) -> ApOption {
        assert!(t_i >= 0.0 && t > 0.0);
        ApOption {
            value: t_i * w_i,
            cost: t_i + (t_i / t).ceil() * d_i,
        }
    }
}

/// A chosen subset and its aggregate value/cost.
#[derive(Debug, Clone, PartialEq)]
pub struct Selection {
    /// Indices of the chosen options.
    pub chosen: Vec<usize>,
    /// Total value.
    pub value: f64,
    /// Total cost.
    pub cost: f64,
}

/// Exact 0-1 knapsack.
///
/// Small instances (≤ 20 options — far more than a client ever faces at
/// once) are solved exhaustively with exact float costs. Larger ones use
/// dynamic programming over a discretised cost budget: `resolution` is
/// the number of budget ticks (1000 ⇒ 0.1 % granularity), with costs
/// rounded **up** so the returned selection never violates the true
/// budget.
pub fn optimal_select(options: &[ApOption], budget: f64, resolution: usize) -> Selection {
    assert!(budget >= 0.0 && resolution > 0);
    if options.len() <= 20 {
        return exhaustive_select(options, budget);
    }
    let scale = resolution as f64 / budget.max(f64::MIN_POSITIVE);
    let caps: Vec<usize> = options
        .iter()
        .map(|o| (o.cost * scale).ceil() as usize)
        .collect();
    // dp[b] = best value within budget b; keep[i][b] = took item i at b.
    let mut dp = vec![0.0f64; resolution + 1];
    let mut keep = vec![vec![false; resolution + 1]; options.len()];
    for (i, opt) in options.iter().enumerate() {
        if opt.value <= 0.0 {
            continue;
        }
        let c = caps[i];
        if c > resolution {
            continue;
        }
        for b in (c..=resolution).rev() {
            let candidate = dp[b - c] + opt.value;
            if candidate > dp[b] {
                dp[b] = candidate;
                keep[i][b] = true;
            }
        }
    }
    // Backtrack.
    let mut chosen = Vec::new();
    let mut b = resolution;
    for i in (0..options.len()).rev() {
        if keep[i][b] {
            chosen.push(i);
            b -= caps[i];
        }
    }
    chosen.reverse();
    let value = chosen.iter().map(|&i| options[i].value).sum();
    let cost = chosen.iter().map(|&i| options[i].cost).sum();
    Selection {
        chosen,
        value,
        cost,
    }
}

/// Exhaustive exact solver for small instances (exact float costs).
fn exhaustive_select(options: &[ApOption], budget: f64) -> Selection {
    let n = options.len();
    let mut best_mask = 0u32;
    let mut best_value = 0.0f64;
    for mask in 0u32..(1 << n) {
        let mut value = 0.0;
        let mut cost = 0.0;
        for (i, opt) in options.iter().enumerate() {
            if mask & (1 << i) != 0 {
                value += opt.value;
                cost += opt.cost;
            }
        }
        if cost <= budget + 1e-12 && value > best_value {
            best_value = value;
            best_mask = mask;
        }
    }
    let chosen: Vec<usize> = (0..n).filter(|i| best_mask & (1 << i) != 0).collect();
    let cost = chosen.iter().map(|&i| options[i].cost).sum();
    Selection {
        chosen,
        value: best_value,
        cost,
    }
}

/// Greedy selection by a scoring function: sort descending by
/// `score(option)`, take whatever still fits the budget. Spider's
/// join-history utility ranking is an instance of this family (with the
/// score independent of instantaneous bandwidth estimates).
pub fn greedy_select<F: Fn(&ApOption) -> f64>(
    options: &[ApOption],
    budget: f64,
    score: F,
) -> Selection {
    let mut order: Vec<usize> = (0..options.len()).collect();
    order.sort_by(|&a, &b| {
        score(&options[b])
            .total_cmp(&score(&options[a]))
            .then(a.cmp(&b))
    });
    let mut chosen = Vec::new();
    let mut cost = 0.0;
    let mut value = 0.0;
    for i in order {
        if options[i].cost <= budget - cost && options[i].value > 0.0 {
            cost += options[i].cost;
            value += options[i].value;
            chosen.push(i);
        }
    }
    chosen.sort_unstable();
    Selection {
        chosen,
        value,
        cost,
    }
}

/// The classic density score (value per unit cost), the strongest simple
/// greedy for knapsack.
pub fn density_score(o: &ApOption) -> f64 {
    if o.cost <= 0.0 {
        f64::INFINITY
    } else {
        o.value / o.cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts(pairs: &[(f64, f64)]) -> Vec<ApOption> {
        pairs
            .iter()
            .map(|&(value, cost)| ApOption { value, cost })
            .collect()
    }

    #[test]
    fn exact_solves_a_textbook_knapsack() {
        // Items (value, cost): optimum within budget 10 is {1, 2} = 11.
        let options = opts(&[(10.0, 9.0), (6.0, 5.0), (5.0, 4.0), (3.0, 3.0)]);
        let sel = optimal_select(&options, 10.0, 1000);
        assert_eq!(sel.chosen, vec![1, 2]);
        assert!((sel.value - 11.0).abs() < 1e-9);
        assert!(sel.cost <= 10.0);
    }

    #[test]
    fn exact_respects_budget_exactly() {
        let options = opts(&[(5.0, 5.0), (5.0, 5.0), (5.0, 5.0)]);
        let sel = optimal_select(&options, 10.0, 1000);
        assert_eq!(sel.chosen.len(), 2);
        assert!(sel.cost <= 10.0 + 1e-9);
    }

    #[test]
    fn greedy_density_is_good_but_not_optimal() {
        // The classic greedy trap: one big dense-enough item beats many.
        let options = opts(&[(60.0, 10.0), (100.0, 19.9), (120.0, 30.0)]);
        let budget = 50.0;
        let g = greedy_select(&options, budget, density_score);
        let o = optimal_select(&options, budget, 2000);
        assert!(o.value >= g.value);
        // Optimal picks items 1+2 (220); greedy takes 0 (density 6) then 1
        // then cannot fit 2 -> 160.
        assert!((o.value - 220.0).abs() < 1e-6, "optimal {o:?}");
        assert!((g.value - 160.0).abs() < 1e-6, "greedy {g:?}");
    }

    #[test]
    fn encounter_construction_matches_appendix() {
        // t_i=8s in range, w_i=500KBps, overhead d_i=0.2s, budget T=30s:
        // V = 4MB, C = 8 + ceil(8/30)*0.2 = 8.2s.
        let o = ApOption::from_encounter(8.0, 500_000.0, 0.2, 30.0);
        assert!((o.value - 4_000_000.0).abs() < 1e-6);
        assert!((o.cost - 8.2).abs() < 1e-9);
    }

    #[test]
    fn zero_value_items_are_never_selected() {
        let options = opts(&[(0.0, 1.0), (5.0, 2.0)]);
        let o = optimal_select(&options, 10.0, 100);
        assert_eq!(o.chosen, vec![1]);
        let g = greedy_select(&options, 10.0, density_score);
        assert_eq!(g.chosen, vec![1]);
    }

    #[test]
    fn oversized_items_are_skipped() {
        let options = opts(&[(100.0, 50.0), (1.0, 1.0)]);
        let o = optimal_select(&options, 10.0, 100);
        assert_eq!(o.chosen, vec![1]);
    }

    #[test]
    fn dp_path_handles_large_instances() {
        // > 20 items exercises the discretised DP. Values grow with
        // index; costs are uniform, so the optimum takes the most
        // valuable items that fit.
        let options: Vec<ApOption> = (0..30)
            .map(|i| ApOption {
                value: (i + 1) as f64,
                cost: 2.0,
            })
            .collect();
        let sel = optimal_select(&options, 10.0, 10_000);
        assert_eq!(sel.chosen.len(), 5);
        assert_eq!(sel.chosen, vec![25, 26, 27, 28, 29]);
        assert!(sel.cost <= 10.0 + 1e-9);
        // The DP never loses to greedy on this instance.
        let g = greedy_select(&options, 10.0, density_score);
        assert!(sel.value >= g.value - 1e-9);
    }

    #[test]
    fn empty_instance() {
        let o = optimal_select(&[], 10.0, 100);
        assert!(o.chosen.is_empty());
        assert_eq!(o.value, 0.0);
    }

    #[cfg(feature = "proptest-tests")]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
        /// The exact solver never violates the budget and always
        /// dominates greedy.
        #[test]
        fn exact_dominates_greedy(
            items in prop::collection::vec((0.1f64..100.0, 0.1f64..20.0), 1..12),
            budget in 1.0f64..40.0,
        ) {
            let options = opts(&items);
            let o = optimal_select(&options, budget, 400);
            let g = greedy_select(&options, budget, density_score);
            prop_assert!(o.cost <= budget + 1e-9);
            prop_assert!(g.cost <= budget + 1e-9);
            prop_assert!(o.value >= g.value - 1e-9,
                "optimal {} < greedy {}", o.value, g.value);
        }

        /// Greedy by density achieves at least half the optimum whenever
        /// every item individually fits (the classic bound holds for the
        /// better of greedy-by-density and best-single-item; we check
        /// against that combined heuristic).
        #[test]
        fn greedy_half_bound(
            items in prop::collection::vec((0.1f64..100.0, 0.1f64..10.0), 1..10),
        ) {
            let budget = 20.0; // every cost <= 10 < budget
            let options = opts(&items);
            let o = optimal_select(&options, budget, 800);
            let g = greedy_select(&options, budget, density_score);
            let best_single = options
                .iter()
                .filter(|x| x.cost <= budget)
                .map(|x| x.value)
                .fold(0.0, f64::max);
            let h = g.value.max(best_single);
            prop_assert!(h * 2.0 + 1e-6 >= o.value,
                "combined heuristic {} below half of optimal {}", h, o.value);
        }
        }
    }
}
