//! Throughput maximisation (Eqs. 8–10) and the dividing speed.
//!
//! Choose channel fractions `f_i` to maximise `T · Σ f_i · Bw` subject
//! to:
//!
//! * Eq. 9 — the air time scheduled on a channel is only useful up to the
//!   bandwidth actually obtainable there: the already-joined bandwidth
//!   `B_j` plus the available bandwidth `B_a` discounted by the fraction
//!   of the encounter spent still joining (which itself depends on
//!   `f_i` through the join model),
//! * Eq. 10 — slot times plus one switch per active channel fit in `D`.
//!
//! Solved by grid search — the space is tiny (k ≤ 3 channels at 1 %
//! resolution) and the objective is not smooth in `f` because `E[X_i]`
//! is built from the stepwise join model, so a grid beats gradient
//! methods here.

use crate::join::JoinModel;

/// Per-channel bandwidth situation, as fractions of the wireless
/// bandwidth `Bw`.
#[derive(Debug, Clone, Copy)]
pub struct ChannelScenario {
    /// End-to-end bandwidth from APs already joined (`B_j / Bw`).
    pub joined_frac: f64,
    /// End-to-end bandwidth from APs still requiring a join (`B_a / Bw`).
    pub available_frac: f64,
}

/// The optimiser.
#[derive(Debug, Clone)]
pub struct ThroughputOptimizer {
    /// Join model supplying `E[X_i]`.
    pub model: JoinModel,
    /// Wireless channel bandwidth `Bw` in bits/second (11 Mb/s in the
    /// paper).
    pub bw_bps: f64,
    /// Practical Wi-Fi range in metres (encounter length = 2 · range).
    pub range_m: f64,
    /// Grid resolution for the fractions.
    pub grid: usize,
}

/// An optimal schedule for one scenario and speed.
#[derive(Debug, Clone)]
pub struct OptimalSchedule {
    /// Chosen fraction per channel.
    pub fractions: Vec<f64>,
    /// Attainable bandwidth per channel in bits/second (`f_i·Bw` capped
    /// by Eq. 9's right-hand side).
    pub per_channel_bps: Vec<f64>,
    /// Total attainable bandwidth (the objective).
    pub total_bps: f64,
}

impl ThroughputOptimizer {
    /// Paper defaults: Bw = 11 Mb/s, 100 m range, 1 % grid.
    pub fn paper(model: JoinModel) -> ThroughputOptimizer {
        ThroughputOptimizer {
            model,
            bw_bps: 11e6,
            range_m: 100.0,
            grid: 50,
        }
    }

    /// Usable time in range at `speed` m/s. Joining starts when the AP
    /// is first heard, which on average happens mid-cell, so the time
    /// available to join-and-use an AP is one range radius — `R / v` —
    /// not the full 2R chord ("given a practical Wi-Fi range of 100
    /// meters", §2.1.3).
    pub fn encounter_secs(&self, speed_mps: f64) -> f64 {
        assert!(speed_mps > 0.0);
        self.range_m / speed_mps
    }

    /// Eq. 9's right-hand side: the usable bandwidth fraction on a
    /// channel given its fraction `f` and encounter length `t`.
    fn usable_frac(&self, sc: &ChannelScenario, f: f64, t: f64) -> f64 {
        let join_frac = self.model.expected_join_fraction(f, t);
        (sc.joined_frac + (1.0 - join_frac) * sc.available_frac).min(1.0)
    }

    /// Solve for the optimal fractions over `scenarios` (one per
    /// channel) at the given node speed.
    ///
    /// Eq. 9 is a *feasibility* constraint with `f_i` on both sides
    /// (spending more time on a channel also speeds up its joins):
    /// `f_i ≤ (B_j + (1 − E[X_i(f_i)])·B_a) / Bw`. A fraction is usable
    /// only if it satisfies its own fixed-point inequality — which is
    /// exactly why a fast-moving node must abandon a join-needing
    /// channel: at short encounters, every positive `f` demands more air
    /// time than the still-joining APs can repay.
    pub fn optimize(&self, scenarios: &[ChannelScenario], speed_mps: f64) -> OptimalSchedule {
        assert!(!scenarios.is_empty());
        let t = self.encounter_secs(speed_mps);
        let k = scenarios.len();
        let g = self.grid;
        // Per-channel feasible grid fractions under Eq. 9.
        let feasible: Vec<Vec<bool>> = scenarios
            .iter()
            .map(|sc| {
                (0..=g)
                    .map(|i| {
                        let f = i as f64 / g as f64;
                        f <= self.usable_frac(sc, f, t) + 1e-9
                    })
                    .collect()
            })
            .collect();
        let switch_frac = self.model.w / self.model.d;

        let mut best = OptimalSchedule {
            fractions: vec![0.0; k],
            per_channel_bps: vec![0.0; k],
            total_bps: 0.0,
        };
        let mut idx = vec![0usize; k];
        loop {
            let eq9_ok = idx.iter().enumerate().all(|(ch, &i)| feasible[ch][i]);
            // Eq. 10: Σ f_i + (#active channels)·w/D ≤ 1.
            let active = idx.iter().filter(|&&i| i > 0).count();
            let sum: f64 = idx.iter().map(|&i| i as f64 / g as f64).sum();
            if eq9_ok && sum + active as f64 * switch_frac <= 1.0 + 1e-9 {
                let per: Vec<f64> = idx
                    .iter()
                    .map(|&i| i as f64 / g as f64 * self.bw_bps)
                    .collect();
                let total = per.iter().sum::<f64>();
                if total > best.total_bps + 1e-6 {
                    best = OptimalSchedule {
                        fractions: idx.iter().map(|&i| i as f64 / g as f64).collect(),
                        per_channel_bps: per,
                        total_bps: total,
                    };
                }
            }
            // Advance the odometer.
            let mut pos = 0;
            loop {
                if pos == k {
                    return best;
                }
                idx[pos] += 1;
                if idx[pos] <= g {
                    break;
                }
                idx[pos] = 0;
                pos += 1;
            }
        }
    }

    /// The dividing speed for a two-channel scenario: the lowest speed at
    /// which the optimal schedule abandons the second channel entirely.
    /// Scans `speeds` (ascending); returns the first speed whose optimum
    /// puts less than one grid step on the losing channel.
    pub fn dividing_speed(&self, scenarios: &[ChannelScenario; 2], speeds: &[f64]) -> Option<f64> {
        for &v in speeds {
            let opt = self.optimize(scenarios, v);
            let min_side = opt.fractions.iter().cloned().fold(f64::INFINITY, f64::min);
            if min_side < 1.0 / self.grid as f64 + 1e-9 {
                return Some(v);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn optimizer(beta_max: f64) -> ThroughputOptimizer {
        let mut o = ThroughputOptimizer::paper(JoinModel::paper_defaults(beta_max));
        o.grid = 20; // coarser grid keeps tests fast
        o
    }

    /// The paper's three Fig. 4 scenarios.
    fn scenario(joined1: f64, avail2: f64) -> [ChannelScenario; 2] {
        [
            ChannelScenario {
                joined_frac: joined1,
                available_frac: 0.0,
            },
            ChannelScenario {
                joined_frac: 0.0,
                available_frac: avail2,
            },
        ]
    }

    #[test]
    fn fast_nodes_stay_on_the_joined_channel() {
        // Fig. 4 headline: at high speed, all time goes to the channel
        // with already-joined APs; the join-needing channel is
        // infeasible at any positive fraction (Eq. 9 fixed point).
        let o = optimizer(10.0);
        for v in [10.0, 20.0] {
            let opt = o.optimize(&scenario(0.75, 0.25), v);
            assert!(
                opt.fractions[1] < 0.06,
                "at {v} m/s ch2 should be abandoned: {:?}",
                opt.fractions
            );
            assert!(opt.fractions[0] >= 0.70);
            assert!(opt.per_channel_bps[1] < 0.06 * 11e6);
        }
    }

    #[test]
    fn slow_nodes_split_time_when_the_other_channel_offers_more() {
        // At 2.5 m/s with only 25% joined on ch1 and 75% available on
        // ch2, the node should spend real time joining ch2.
        let o = optimizer(10.0);
        let opt = o.optimize(&scenario(0.25, 0.75), 2.5);
        assert!(
            opt.fractions[1] > 0.15,
            "slow node should invest in ch2: {:?}",
            opt.fractions
        );
        assert!(opt.total_bps > 0.25 * 11e6);
    }

    #[test]
    fn dividing_speed_is_below_10mps() {
        // "users that travel with an average speed of 10 m/s or faster
        // should form concurrent Wi-Fi connections only within a single
        // channel" — so the dividing speed is at most 10 m/s in the
        // paper's scenarios (Fig. 4's x-axis: 2.5–20 m/s).
        let o = optimizer(10.0);
        let speeds = [2.5, 3.3, 5.0, 6.6, 10.0, 20.0];
        let div = o
            .dividing_speed(&scenario(0.75, 0.25), &speeds)
            .expect("dividing speed for (0.75,0.25)");
        assert!(div <= 10.0, "dividing speed {div} for (0.75,0.25)");
        // Scenarios with more bandwidth behind the join divide later but
        // still within the vehicular band (Fig. 4's x-axis reaches 20).
        for (j, a) in [(0.5, 0.5), (0.25, 0.75)] {
            let div = o.dividing_speed(&scenario(j, a), &speeds);
            assert!(div.is_some(), "no dividing speed found for ({j},{a})");
            assert!(div.unwrap() <= 20.0, "dividing speed {div:?} for ({j},{a})");
        }
    }

    #[test]
    fn objective_capped_by_offered_bandwidth() {
        let o = optimizer(10.0);
        // Nothing joined, nothing available: zero throughput no matter
        // the schedule.
        let empty = [ChannelScenario {
            joined_frac: 0.0,
            available_frac: 0.0,
        }];
        let opt = o.optimize(&empty, 5.0);
        assert_eq!(opt.total_bps, 0.0);
        // Fully joined single channel: full Bw.
        let full = [ChannelScenario {
            joined_frac: 1.0,
            available_frac: 0.0,
        }];
        let opt = o.optimize(&full, 5.0);
        assert!((opt.total_bps - 11e6).abs() < 11e6 / 20.0 + 1.0);
    }

    #[test]
    fn schedule_satisfies_eq10() {
        let o = optimizer(5.0);
        let opt = o.optimize(&scenario(0.5, 0.5), 5.0);
        let active = opt.fractions.iter().filter(|&&f| f > 0.0).count() as f64;
        let sum: f64 = opt.fractions.iter().sum();
        assert!(sum + active * (0.007 / 0.5) <= 1.0 + 1e-6);
    }

    #[test]
    fn encounter_shrinks_with_speed() {
        let o = optimizer(5.0);
        assert_eq!(o.encounter_secs(10.0), 10.0);
        assert_eq!(o.encounter_secs(2.5), 40.0);
    }

    #[test]
    fn faster_joins_make_second_channel_more_attractive() {
        let o_fast = optimizer(1.0);
        let o_slow = optimizer(10.0);
        let sc = scenario(0.25, 0.75);
        let at = |o: &ThroughputOptimizer| o.optimize(&sc, 6.6).fractions[1];
        assert!(
            at(&o_fast) >= at(&o_slow),
            "shorter βmax should not reduce time invested on the join channel"
        );
    }
}
