//! Monte-Carlo validation of the join model (the "Simulation" series of
//! Fig. 2).
//!
//! Simulates the *same simplified process* the closed form describes —
//! one-shot join requests every `c` seconds while on-channel, uniform
//! response times, independent per-direction losses — and estimates the
//! join probability empirically. Agreement between this and
//! [`JoinModel::p_join`](crate::join::JoinModel::p_join) is what the
//! paper calls internal validation (§2.1.1).

use crate::join::JoinModel;
use spider_simcore::SimRng;

/// Result of a Monte-Carlo estimate.
#[derive(Debug, Clone, Copy)]
pub struct MonteCarloEstimate {
    /// Mean join probability across runs.
    pub mean: f64,
    /// Standard deviation across runs (the error bars of Fig. 2).
    pub std_dev: f64,
}

/// Estimate the probability of a successful join within `t` seconds at
/// channel fraction `fi`, using `runs` independent runs of `trials`
/// trials each (the paper uses 100 × 100).
pub fn simulate_join_probability(
    model: &JoinModel,
    fi: f64,
    t: f64,
    runs: usize,
    trials: usize,
    rng: &mut SimRng,
) -> MonteCarloEstimate {
    let rounds = (t / model.d).floor() as usize;
    let segments = model.segments(fi);
    let mut run_means = Vec::with_capacity(runs);
    for _ in 0..runs {
        let mut successes = 0usize;
        for _ in 0..trials {
            if single_trial(model, fi, rounds, segments, rng) {
                successes += 1;
            }
        }
        run_means.push(successes as f64 / trials.max(1) as f64);
    }
    let mean = run_means.iter().sum::<f64>() / runs.max(1) as f64;
    let var = run_means.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / runs.max(1) as f64;
    MonteCarloEstimate {
        mean,
        std_dev: var.sqrt(),
    }
}

/// One trial: does any request sent during `rounds` rounds get its
/// response back inside an on-channel window?
fn single_trial(
    model: &JoinModel,
    fi: f64,
    rounds: usize,
    segments: usize,
    rng: &mut SimRng,
) -> bool {
    let ok = |rng: &mut SimRng, h: f64| !rng.chance(h);
    for m in 1..=rounds {
        let round_start = (m - 1) as f64 * model.d;
        for k in 1..=segments {
            // Request leaves at the start of segment k (after the switch
            // cost w), per the model's Fig. 1 geometry.
            if !ok(rng, model.h) || !ok(rng, model.h) {
                continue; // request or response lost
            }
            let beta = rng.uniform_in(model.beta_min, model.beta_max);
            let arrival = round_start + model.w + (k - 1) as f64 * model.c + beta;
            // Success iff the arrival falls inside the on-channel window
            // of some round n >= m within the encounter.
            for n in m..=rounds {
                let win_start = (n - 1) as f64 * model.d;
                let win_end = win_start + fi * model.d;
                if arrival >= win_start && arrival <= win_end {
                    return true;
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulation_matches_model_shape() {
        // Fig. 2's claim: "The simulation results are statistically
        // equivalent to the model." We check agreement within a few
        // percent at several operating points.
        let model = JoinModel::paper_defaults(5.0);
        let mut rng = SimRng::new(42);
        for fi in [0.2, 0.4, 0.6, 0.8, 1.0] {
            let analytic = model.p_join(fi, 4.0);
            let mc = simulate_join_probability(&model, fi, 4.0, 40, 100, &mut rng);
            assert!(
                (analytic - mc.mean).abs() < 0.08 + 2.5 * mc.std_dev,
                "fi={fi}: model {analytic:.3} vs sim {:.3} (sd {:.3})",
                mc.mean,
                mc.std_dev,
            );
        }
    }

    #[test]
    fn simulation_matches_model_for_slow_aps() {
        let model = JoinModel::paper_defaults(10.0);
        let mut rng = SimRng::new(7);
        for fi in [0.25, 0.5, 1.0] {
            let analytic = model.p_join(fi, 4.0);
            let mc = simulate_join_probability(&model, fi, 4.0, 40, 100, &mut rng);
            assert!(
                (analytic - mc.mean).abs() < 0.08 + 2.5 * mc.std_dev,
                "fi={fi}: model {analytic:.3} vs sim {:.3}",
                mc.mean
            );
        }
    }

    #[test]
    fn simulation_is_monotone_in_fi() {
        let model = JoinModel::paper_defaults(5.0);
        let mut rng = SimRng::new(3);
        let lo = simulate_join_probability(&model, 0.1, 4.0, 20, 200, &mut rng);
        let hi = simulate_join_probability(&model, 0.9, 4.0, 20, 200, &mut rng);
        assert!(hi.mean > lo.mean);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let model = JoinModel::paper_defaults(5.0);
        let a = simulate_join_probability(&model, 0.5, 4.0, 5, 50, &mut SimRng::new(1));
        let b = simulate_join_probability(&model, 0.5, 4.0, 5, 50, &mut SimRng::new(1));
        assert_eq!(a.mean, b.mean);
        assert_eq!(a.std_dev, b.std_dev);
    }

    #[test]
    fn zero_rounds_never_join() {
        let model = JoinModel::paper_defaults(5.0);
        let mc = simulate_join_probability(&model, 0.5, 0.2, 5, 50, &mut SimRng::new(2));
        assert_eq!(mc.mean, 0.0);
    }
}
