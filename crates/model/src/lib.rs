//! The paper's analytical framework (§2.1 and Appendix A).
//!
//! * [`join`] — the closed-form probability `p(f_i, t)` that a mobile
//!   node obtains a DHCP lease from an AP on channel *i* within *t*
//!   seconds of entering range, given the fraction `f_i` of the schedule
//!   spent on that channel (Eqs. 5–7, plotted in Figs. 2–3),
//! * [`montecarlo`] — a direct simulation of the same simplified join
//!   process, used to validate the closed form (the "Simulation" series
//!   of Fig. 2),
//! * [`optimizer`] — the throughput-maximisation framework (Eqs. 8–10)
//!   whose numeric solution yields Fig. 4 and the *dividing speed* below
//!   which multi-channel scheduling pays off,
//! * [`selection`] — Appendix A's multi-AP selection problem: the
//!   knapsack construction showing NP-hardness, an exact dynamic-program
//!   solver for small instances, and the greedy utility heuristic Spider
//!   uses instead.

#![forbid(unsafe_code)]

pub mod join;
pub mod montecarlo;
pub mod optimizer;
pub mod selection;

pub use join::JoinModel;
pub use montecarlo::simulate_join_probability;
pub use optimizer::{ChannelScenario, OptimalSchedule, ThroughputOptimizer};
pub use selection::{greedy_select, optimal_select, ApOption, Selection};
