//! A stock single-AP Wi-Fi driver (the paper's "unmodified MadWiFi
//! driver" comparison point, §4.1), plus the Cabernet/QuickWiFi variant.
//!
//! Behaviour: when unassociated, sweep the scan channels dwelling on
//! each; after a full sweep pick the strongest fresh AP and join it with
//! stock timers; camp on its channel until the connection dies; then
//! scan again. One AP at a time, signal-strength selection — everything
//! the paper's analysis says is wrong for mobility, which is the point.

use spider_core::iface::{ClientIface, IfaceEvent};
use spider_core::utility::{JoinOutcome, UtilityConfig, UtilityTable};
use spider_mac80211::{ApTarget, ClientMacConfig, ClientSystem, DriverAction, JoinLog, RxFrame};
use spider_netstack::{DhcpClientConfig, LeaseCache, PingConfig};
use spider_simcore::SimDuration as Dur;
use spider_simcore::{SimDuration, SimTime};
use spider_wire::{Channel, FrameBody, MacAddr};

/// Stock driver configuration.
#[derive(Debug, Clone)]
pub struct StockConfig {
    /// Link-layer timers.
    pub mac: ClientMacConfig,
    /// DHCP timers.
    pub dhcp: DhcpClientConfig,
    /// Channels swept while scanning.
    pub scan_channels: Vec<Channel>,
    /// Dwell per scan channel.
    pub scan_dwell: SimDuration,
    /// Minimum RSSI to consider an AP.
    pub min_rssi_dbm: f64,
    /// Whether leases are cached per BSSID (stock: no; QuickWiFi: yes).
    pub cache_leases: bool,
    /// Liveness probing. A stock driver has no ping monitor — it notices
    /// a dead link only after many seconds of silence; QuickWiFi detects
    /// loss quickly.
    pub ping: PingConfig,
    /// Start a TCP download once connected.
    pub tcp_enabled: bool,
    /// Client identity for MAC addressing.
    pub client_id: u64,
    /// Label for experiment output.
    pub name: &'static str,
}

impl StockConfig {
    /// Unmodified-driver defaults: 1 s link-layer timeout, 3 s DHCP with
    /// a 60 s penalty box, full 11-channel sweep, no lease caching.
    pub fn stock(client_id: u64) -> StockConfig {
        StockConfig {
            mac: ClientMacConfig::stock(),
            dhcp: DhcpClientConfig::stock(),
            scan_channels: (1..=11).map(Channel::new).collect(),
            scan_dwell: SimDuration::from_millis(120),
            min_rssi_dbm: -90.0,
            cache_leases: false,
            // ~12 s to declare a connection dead (beacon-loss timescale).
            ping: PingConfig {
                interval: Dur::from_secs(1),
                fail_threshold: 12,
                id: 0,
                // A stock stack has no tightened probe deadline and no
                // gateway fallback; keep the old 3-interval grace.
                reply_deadline: Dur::from_secs(3),
                gateway_fallback_after: None,
            },
            tcp_enabled: true,
            client_id,
            name: "MadWiFi",
        }
    }

    /// Cabernet's QuickWiFi: reduced timeouts (100 ms link-layer /
    /// 100 ms DHCP messages), orthogonal-channel sweep, lease caching.
    pub fn quickwifi(client_id: u64) -> StockConfig {
        StockConfig {
            mac: ClientMacConfig::reduced(),
            dhcp: DhcpClientConfig::reduced(SimDuration::from_millis(100)),
            scan_channels: Channel::ORTHOGONAL.to_vec(),
            scan_dwell: SimDuration::from_millis(100),
            min_rssi_dbm: -90.0,
            cache_leases: true,
            ping: PingConfig::paper(0),
            tcp_enabled: true,
            client_id,
            name: "Cabernet",
        }
    }
}

/// What the driver is doing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Sweeping `scan_channels[idx]` since `since`.
    Scanning { idx: usize, since: SimTime },
    /// Waiting for an in-flight channel switch.
    Switching,
    /// Bound to an AP (the single interface is busy).
    Camped,
}

/// The stock driver.
// Clone backs `ClientSystem::clone_boxed` (DESIGN.md §13).
#[derive(Clone)]
pub struct StockDriver {
    cfg: StockConfig,
    iface: ClientIface,
    table: UtilityTable,
    leases: LeaseCache,
    log: JoinLog,
    mode: Mode,
    current: Option<Channel>,
    sweep_complete: bool,
}

impl StockDriver {
    /// Create a driver; the radio is assumed tuned to the first scan
    /// channel.
    pub fn new(cfg: StockConfig) -> StockDriver {
        assert!(!cfg.scan_channels.is_empty());
        // Selection is pure RSSI: keep all utilities at bootstrap so the
        // table's tie-break (signal strength) decides.
        let util_cfg = UtilityConfig {
            min_rssi_dbm: cfg.min_rssi_dbm,
            freshness: SimDuration::from_secs(3),
            ..UtilityConfig::default()
        };
        let iface = ClientIface::new(
            0,
            MacAddr::from_id(cfg.client_id * 1_000 + 500),
            cfg.mac.clone(),
            cfg.dhcp.clone(),
            cfg.ping.clone(),
            cfg.tcp_enabled,
        );
        let current = Some(cfg.scan_channels[0]);
        StockDriver {
            cfg,
            iface,
            table: UtilityTable::new(util_cfg),
            leases: LeaseCache::new(),
            log: JoinLog::new(),
            mode: Mode::Scanning {
                idx: 0,
                since: SimTime::ZERO,
            },
            current,
            sweep_complete: false,
        }
    }

    fn absorb(&mut self, now: SimTime, events: Vec<IfaceEvent>, actions: &mut Vec<DriverAction>) {
        for ev in events {
            match ev {
                IfaceEvent::Transmit(frame) => {
                    actions.push(DriverAction::Transmit { iface: 0, frame })
                }
                IfaceEvent::GotLease { bssid, lease, .. } => {
                    if self.cfg.cache_leases {
                        self.leases.insert(bssid, lease);
                    }
                }
                IfaceEvent::ConnectivityUp { bssid, .. } => {
                    self.table
                        .record_outcome(now, bssid, JoinOutcome::FullyJoined);
                }
                IfaceEvent::Down { bssid, outcome } => {
                    if let Some(outcome) = outcome {
                        self.table.record_outcome(now, bssid, outcome);
                    }
                    // Back to scanning from the first channel.
                    self.start_scan(now, actions);
                }
                IfaceEvent::LeaseRejected { bssid } => {
                    self.leases.invalidate(bssid);
                }
                // A stock driver has no portal heuristics: it learns about
                // the portal only from the matching `Down`.
                IfaceEvent::PortalSuspected { .. } => {}
            }
        }
    }

    fn start_scan(&mut self, now: SimTime, actions: &mut Vec<DriverAction>) {
        self.sweep_complete = false;
        self.mode = Mode::Switching;
        let first = self.cfg.scan_channels[0];
        if self.current == Some(first) {
            self.mode = Mode::Scanning { idx: 0, since: now };
        } else {
            self.current = None;
            actions.push(DriverAction::SwitchChannel(first));
        }
    }

    fn try_join_best(&mut self, now: SimTime, actions: &mut Vec<DriverAction>) {
        let Some((bssid, rec)) = self.table.best_candidate(now, &[], &[]) else {
            return;
        };
        let target = ApTarget {
            bssid,
            ssid: rec.ssid.clone(),
            channel: rec.channel,
        };
        let cached = if self.cfg.cache_leases {
            self.leases.lookup(now, bssid)
        } else {
            None
        };
        if !self.iface.dhcp_ready(now) {
            return; // stock DHCP penalty box
        }
        self.iface.start_join(now, target.clone(), cached);
        self.mode = if self.current == Some(target.channel) {
            Mode::Camped
        } else {
            self.current = None;
            actions.push(DriverAction::SwitchChannel(target.channel));
            Mode::Switching
        };
    }

    fn on_channel(&self) -> bool {
        match (self.current, self.iface.target()) {
            (Some(cur), Some(t)) => cur == t.channel,
            _ => false,
        }
    }
}

impl ClientSystem for StockDriver {
    fn label(&self) -> String {
        self.cfg.name.to_string()
    }

    fn on_frame_into(&mut self, now: SimTime, rx: &RxFrame<'_>, actions: &mut Vec<DriverAction>) {
        match &rx.frame.body {
            FrameBody::Beacon { ssid, channel, .. }
            | FrameBody::ProbeResponse { ssid, channel } => {
                if let Some(rssi) = rx.rssi_dbm {
                    self.table.observe(now, rx.frame.src, ssid, *channel, rssi);
                }
            }
            _ => {}
        }
        let relevant = rx.frame.dst == self.iface.addr
            || {
                if let FrameBody::Data { packet, .. } = &rx.frame.body {
                    matches!(&packet.payload, spider_wire::ip::L4::Dhcp(m) if m.chaddr == self.iface.addr)
                } else {
                    false
                }
            };
        if relevant {
            let mut log = std::mem::take(&mut self.log);
            let evs = self.iface.on_frame(now, rx.frame, &mut log);
            let on_ch = self.on_channel();
            let evs2 = self.iface.poll(now, on_ch, &mut log);
            self.log = log;
            self.absorb(now, evs, actions);
            self.absorb(now, evs2, actions);
        }
    }

    fn on_switch_complete_into(
        &mut self,
        now: SimTime,
        ch: Channel,
        actions: &mut Vec<DriverAction>,
    ) {
        self.current = Some(ch);
        if self.iface.is_busy() {
            self.mode = Mode::Camped;
            let on_ch = self.on_channel();
            let mut log = std::mem::take(&mut self.log);
            let evs = self.iface.poll(now, on_ch, &mut log);
            self.log = log;
            self.absorb(now, evs, actions);
        } else {
            // Arrived on a scan channel.
            let idx = self
                .cfg
                .scan_channels
                .iter()
                .position(|&c| c == ch)
                .unwrap_or(0);
            self.mode = Mode::Scanning { idx, since: now };
        }
    }

    fn poll_into(&mut self, now: SimTime, actions: &mut Vec<DriverAction>) {
        match self.mode {
            Mode::Scanning { idx, since } => {
                // After a full sweep, try to join the best AP seen.
                if self.sweep_complete {
                    self.try_join_best(now, actions);
                    self.sweep_complete = false;
                }
                if matches!(self.mode, Mode::Scanning { .. })
                    && now.saturating_since(since) >= self.cfg.scan_dwell
                {
                    let next = idx + 1;
                    if next >= self.cfg.scan_channels.len() {
                        self.sweep_complete = true;
                        // Try joining right away with what we have.
                        self.try_join_best(now, actions);
                        if matches!(self.mode, Mode::Scanning { .. }) {
                            // Nothing to join: sweep again.
                            self.start_scan(now, actions);
                        }
                    } else {
                        let ch = self.cfg.scan_channels[next];
                        self.mode = Mode::Switching;
                        if self.current == Some(ch) {
                            self.mode = Mode::Scanning {
                                idx: next,
                                since: now,
                            };
                        } else {
                            self.current = None;
                            actions.push(DriverAction::SwitchChannel(ch));
                        }
                    }
                }
            }
            Mode::Switching => {}
            Mode::Camped => {
                if !self.iface.is_busy() {
                    self.start_scan(now, actions);
                }
            }
        }
        let on_ch = self.on_channel();
        let mut log = std::mem::take(&mut self.log);
        let evs = self.iface.poll(now, on_ch, &mut log);
        self.log = log;
        self.absorb(now, evs, actions);
    }

    fn next_wakeup(&self, now: SimTime) -> SimTime {
        let mut t = self.iface.next_wakeup();
        if let Mode::Scanning { since, .. } = self.mode {
            t = t.min(since + self.cfg.scan_dwell);
        }
        // Re-poll regularly while camped-but-idle or switching stalls.
        t.min(now + SimDuration::from_millis(200)).max(now)
    }

    fn join_log(&self) -> &JoinLog {
        &self.log
    }

    fn is_connected(&self) -> bool {
        self.iface.is_connected()
    }

    fn delivered_bytes(&self) -> u64 {
        self.iface.delivered_bytes()
    }

    fn associated_interfaces(&self) -> usize {
        usize::from(self.iface.is_associated())
    }

    fn initial_channel(&self) -> Channel {
        self.cfg.scan_channels[0]
    }

    fn can_use_channel(&self, ch: Channel) -> bool {
        self.cfg.scan_channels.contains(&ch)
    }

    fn clone_boxed(&self) -> Box<dyn ClientSystem + Send> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spider_mac80211::RxBuf;
    use spider_simcore::SimDuration;
    use spider_wire::{Frame, Ssid};

    fn beacon(ap_id: u64, ch: Channel, rssi: f64) -> RxBuf {
        RxBuf {
            frame: Frame {
                src: MacAddr::from_id(ap_id),
                dst: MacAddr::BROADCAST,
                bssid: MacAddr::from_id(ap_id),
                body: FrameBody::Beacon {
                    ssid: Ssid::new(format!("ap{ap_id}")),
                    channel: ch,
                    interval: SimDuration::from_micros(102_400),
                },
            },
            channel: ch,
            rssi_dbm: Some(rssi),
        }
    }

    /// Drive the scan loop until the driver asks to switch or acts.
    fn run_until_auth(driver: &mut StockDriver, horizon_ms: u64) -> Option<MacAddr> {
        let mut t = SimTime::ZERO;
        while t < SimTime::from_millis(horizon_ms) {
            let wk = driver.next_wakeup(t).max(t + SimDuration::from_millis(1));
            t = wk;
            for a in driver.poll(t) {
                match a {
                    DriverAction::SwitchChannel(ch) => {
                        // Instant switch for the test harness.
                        driver.on_switch_complete(t + SimDuration::from_millis(5), ch);
                    }
                    DriverAction::Transmit { frame, .. } => {
                        if matches!(frame.body, FrameBody::AuthRequest) {
                            return Some(frame.dst);
                        }
                    }
                }
            }
        }
        None
    }

    #[test]
    fn scans_sweep_all_channels() {
        let mut d = StockDriver::new(StockConfig::stock(1));
        let mut visited = std::collections::HashSet::new();
        let mut t = SimTime::ZERO;
        for _ in 0..100 {
            if let Some(ch) = d.current {
                visited.insert(ch);
            }
            t = d.next_wakeup(t).max(t + SimDuration::from_millis(1));
            for a in d.poll(t) {
                if let DriverAction::SwitchChannel(ch) = a {
                    d.on_switch_complete(t + SimDuration::from_millis(5), ch);
                }
            }
        }
        assert_eq!(visited.len(), 11, "full-band sweep: {visited:?}");
    }

    #[test]
    fn joins_strongest_ap_after_sweep() {
        let mut d = StockDriver::new(StockConfig::quickwifi(1));
        // Hear two APs on channel 6 while sweeping; the stronger wins.
        d.on_frame(
            SimTime::from_millis(1),
            &beacon(100, Channel::CH6, -80.0).rx(),
        );
        d.on_frame(
            SimTime::from_millis(2),
            &beacon(101, Channel::CH6, -55.0).rx(),
        );
        let joined = run_until_auth(&mut d, 2_000);
        assert_eq!(joined, Some(MacAddr::from_id(101)));
    }

    #[test]
    fn rescans_after_connection_down() {
        let mut d = StockDriver::new(StockConfig::quickwifi(1));
        d.on_frame(
            SimTime::from_millis(1),
            &beacon(100, Channel::CH1, -60.0).rx(),
        );
        let joined = run_until_auth(&mut d, 2_000);
        assert!(joined.is_some());
        // Let the link-layer join fail (no responses): the driver must
        // eventually resume scanning (mode != Camped with a busy iface).
        let mut t = SimTime::from_secs(2);
        for _ in 0..200 {
            t = d.next_wakeup(t).max(t + SimDuration::from_millis(1));
            for a in d.poll(t) {
                if let DriverAction::SwitchChannel(ch) = a {
                    d.on_switch_complete(t + SimDuration::from_millis(5), ch);
                }
            }
        }
        assert!(!d.iface.is_busy());
        assert!(matches!(d.mode, Mode::Scanning { .. } | Mode::Switching));
    }

    #[test]
    fn labels_differ() {
        assert_eq!(StockDriver::new(StockConfig::stock(1)).label(), "MadWiFi");
        assert_eq!(
            StockDriver::new(StockConfig::quickwifi(1)).label(),
            "Cabernet"
        );
    }

    #[test]
    fn quickwifi_caches_leases_stock_does_not() {
        assert!(StockConfig::quickwifi(1).cache_leases);
        assert!(!StockConfig::stock(1).cache_leases);
    }
}
