//! A FatVAP-style AP-sliced virtual Wi-Fi driver.
//!
//! FatVAP (NSDI'08) time-slices a single radio across *APs*, sizing each
//! AP's share by its estimated end-to-end bandwidth so the aggregate
//! matches what the backhauls can deliver. It was built for stationary
//! clients: its scheduler assumes associations and DHCP leases already
//! exist and last forever (§1). Reproduced here faithfully enough to
//! exhibit the failure mode the paper identifies:
//!
//! * the schedule is per-AP — while AP `j`'s queue holds the radio, a
//!   join in progress toward another AP on the *same channel* makes no
//!   progress (contrast Spider's per-channel queues),
//! * AP selection ranks by estimated bandwidth (optimistic bootstrap for
//!   unseen APs), not join history,
//! * joins receive no special scheduling — they advance only during the
//!   target AP's slice.

use spider_core::iface::{ClientIface, IfaceEvent};
use spider_core::utility::{UtilityConfig, UtilityTable};
use spider_mac80211::{ApTarget, ClientMacConfig, ClientSystem, DriverAction, JoinLog, RxFrame};
use spider_netstack::{DhcpClientConfig, PingConfig};
use spider_simcore::{FxHashMap, SimDuration, SimTime};
use spider_wire::{Channel, Frame, FrameBody, MacAddr};

/// FatVAP-style configuration.
#[derive(Debug, Clone)]
pub struct FatVapConfig {
    /// Concurrent connections maintained (FatVAP's evaluation used ~3).
    pub num_conns: usize,
    /// Radio time per AP slot.
    pub slice: SimDuration,
    /// Link-layer timers.
    pub mac: ClientMacConfig,
    /// DHCP timers.
    pub dhcp: DhcpClientConfig,
    /// Optimistic bandwidth estimate for never-measured APs (bytes/s) —
    /// makes every AP worth trying once.
    pub bootstrap_bw: f64,
    /// EWMA weight for fresh bandwidth measurements.
    pub estimate_alpha: f64,
    /// Channels visited by the scan slot.
    pub scan_channels: Vec<Channel>,
    /// Start TCP downloads once connected.
    pub tcp_enabled: bool,
    /// Client identity.
    pub client_id: u64,
}

impl Default for FatVapConfig {
    fn default() -> Self {
        FatVapConfig {
            num_conns: 3,
            slice: SimDuration::from_millis(100),
            mac: ClientMacConfig::reduced(),
            dhcp: DhcpClientConfig::reduced(SimDuration::from_millis(200)),
            bootstrap_bw: 500_000.0,
            estimate_alpha: 0.3,
            scan_channels: Channel::ORTHOGONAL.to_vec(),
            tcp_enabled: true,
            client_id: 0,
        }
    }
}

/// What currently owns the radio.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Slot {
    /// Interface `i`'s AP.
    Conn(usize),
    /// Scanning `scan_channels[i]`.
    Scan(usize),
}

/// The FatVAP-style driver.
// Clone backs `ClientSystem::clone_boxed` (DESIGN.md §13).
#[derive(Clone)]
pub struct FatVapDriver {
    cfg: FatVapConfig,
    ifaces: Vec<ClientIface>,
    scanner: UtilityTable,
    /// EWMA end-to-end bandwidth per AP (bytes/s).
    estimates: FxHashMap<MacAddr, f64>,
    log: JoinLog,
    slot: Slot,
    slot_started: SimTime,
    /// Delivered bytes at the start of the active conn slot, for
    /// bandwidth estimation.
    slot_baseline: u64,
    current: Option<Channel>,
    switching: bool,
}

impl FatVapDriver {
    /// Create a driver, initially in its scan slot on the first scan
    /// channel.
    pub fn new(cfg: FatVapConfig) -> FatVapDriver {
        assert!(cfg.num_conns >= 1 && !cfg.scan_channels.is_empty());
        let ifaces = (0..cfg.num_conns)
            .map(|i| {
                ClientIface::new(
                    i,
                    MacAddr::from_id(cfg.client_id * 1_000 + 700 + i as u64),
                    cfg.mac.clone(),
                    cfg.dhcp.clone(),
                    PingConfig::paper(i as u16),
                    cfg.tcp_enabled,
                )
            })
            .collect();
        let scanner = UtilityTable::new(UtilityConfig::default());
        let current = Some(cfg.scan_channels[0]);
        FatVapDriver {
            cfg,
            ifaces,
            scanner,
            estimates: FxHashMap::default(),
            log: JoinLog::new(),
            slot: Slot::Scan(0),
            slot_started: SimTime::ZERO,
            slot_baseline: 0,
            current,
            switching: false,
        }
    }

    /// Estimated bandwidth for an AP (bootstrap for unknown).
    pub fn estimate_for(&self, bssid: MacAddr) -> f64 {
        self.estimates
            .get(&bssid)
            .copied()
            .unwrap_or(self.cfg.bootstrap_bw)
    }

    fn absorb(
        &mut self,
        _now: SimTime,
        idx: usize,
        events: Vec<IfaceEvent>,
        actions: &mut Vec<DriverAction>,
    ) {
        for ev in events {
            match ev {
                IfaceEvent::Transmit(frame) => {
                    actions.push(DriverAction::Transmit { iface: idx, frame })
                }
                IfaceEvent::Down { bssid, .. } => {
                    // Penalise the estimate so a failed AP loses its slot
                    // appeal (FatVAP re-estimates continuously).
                    let e = self.estimate_for(bssid);
                    self.estimates.insert(bssid, e * 0.5);
                }
                IfaceEvent::GotLease { .. }
                | IfaceEvent::ConnectivityUp { .. }
                | IfaceEvent::LeaseRejected { .. }
                | IfaceEvent::PortalSuspected { .. } => {}
            }
        }
    }

    /// Rank candidates by estimated bandwidth and bind idle interfaces.
    fn assign_ifaces(&mut self, now: SimTime) {
        loop {
            let Some(idle_idx) = self.ifaces.iter().position(|i| !i.is_busy()) else {
                return;
            };
            let in_use: Vec<MacAddr> = self.ifaces.iter().filter_map(|i| i.bssid()).collect();
            // Choose the fresh AP with the best bandwidth estimate.
            let mut best: Option<(MacAddr, ApTarget, f64)> = None;
            let census = self.scanner.channel_census(now);
            let _ = census;
            for ch in Channel::ORTHOGONAL {
                if let Some((bssid, rec)) = self.scanner.best_candidate(now, &[ch], &in_use) {
                    let score = self.estimate_for(bssid);
                    let better = match &best {
                        None => true,
                        Some((_, _, s)) => score > *s,
                    };
                    if better {
                        best = Some((
                            bssid,
                            ApTarget {
                                bssid,
                                ssid: rec.ssid.clone(),
                                channel: rec.channel,
                            },
                            score,
                        ));
                    }
                }
            }
            let Some((_, target, _)) = best else { return };
            if !self.ifaces[idle_idx].dhcp_ready(now) {
                return;
            }
            // FatVAP has no per-BSSID lease cache.
            self.ifaces[idle_idx].start_join(now, target, None);
        }
    }

    /// Park the currently active AP (if any) with a PSM null frame.
    fn park_active(&mut self, actions: &mut Vec<DriverAction>) {
        if let Slot::Conn(i) = self.slot {
            let iface = &self.ifaces[i];
            if iface.is_associated() {
                if let Some(bssid) = iface.bssid() {
                    actions.push(DriverAction::Transmit {
                        iface: i,
                        frame: Frame {
                            src: iface.addr,
                            dst: bssid,
                            bssid,
                            body: FrameBody::Null { power_save: true },
                        },
                    });
                }
            }
        }
    }

    /// Advance to the next slot: round-robin over busy connections plus
    /// one scan slot per rotation.
    fn advance_slot(&mut self, now: SimTime, actions: &mut Vec<DriverAction>) {
        // Record a bandwidth sample for the conn slot that just ended.
        if let Slot::Conn(i) = self.slot {
            if let Some(bssid) = self.ifaces[i].bssid() {
                let delivered = self.ifaces[i].delivered_bytes() - self.slot_baseline;
                let elapsed = now.saturating_since(self.slot_started).as_secs_f64();
                if elapsed > 0.0 {
                    let sample = delivered as f64 / elapsed;
                    let old = self.estimate_for(bssid);
                    let a = self.cfg.estimate_alpha;
                    self.estimates.insert(bssid, (1.0 - a) * old + a * sample);
                }
            }
        }
        self.park_active(actions);
        // Next slot in the rotation.
        let n = self.ifaces.len();
        let next = match self.slot {
            Slot::Conn(i) => {
                let mut next = None;
                for step in 1..=n {
                    let j = (i + step) % n;
                    if j <= i && step <= n {
                        // wrapped past the end: insert the scan slot first
                        next = None;
                        break;
                    }
                    if self.ifaces[j].is_busy() {
                        next = Some(Slot::Conn(j));
                        break;
                    }
                }
                next.unwrap_or(Slot::Scan(0))
            }
            Slot::Scan(s) => {
                // After scanning, serve the first busy connection; if
                // none, keep scanning the next channel.
                match self.ifaces.iter().position(|i| i.is_busy()) {
                    Some(j) => Slot::Conn(j),
                    None => Slot::Scan((s + 1) % self.cfg.scan_channels.len()),
                }
            }
        };
        self.slot = next;
        self.slot_started = now;
        self.slot_baseline = match next {
            Slot::Conn(i) => self.ifaces[i].delivered_bytes(),
            _ => 0,
        };
        // Tune the radio for the new slot.
        let want = match next {
            Slot::Conn(i) => self.ifaces[i].target().map(|t| t.channel),
            Slot::Scan(s) => Some(self.cfg.scan_channels[s]),
        };
        if let Some(ch) = want {
            if self.current != Some(ch) {
                self.current = None;
                self.switching = true;
                actions.push(DriverAction::SwitchChannel(ch));
            } else {
                self.wake_active(actions);
            }
        }
    }

    /// Wake the newly active AP after arriving on its channel.
    fn wake_active(&mut self, actions: &mut Vec<DriverAction>) {
        if let Slot::Conn(i) = self.slot {
            let iface = &self.ifaces[i];
            if iface.is_associated() {
                if let Some(bssid) = iface.bssid() {
                    actions.push(DriverAction::Transmit {
                        iface: i,
                        frame: Frame {
                            src: iface.addr,
                            dst: bssid,
                            bssid,
                            body: FrameBody::Null { power_save: false },
                        },
                    });
                }
            }
        }
    }

    /// Whether interface `i` may use the radio right now: FatVAP's
    /// defining constraint — only the slot owner talks, even if another
    /// interface's AP shares the channel.
    fn iface_active(&self, i: usize) -> bool {
        !self.switching && self.slot == Slot::Conn(i) && {
            match (self.current, self.ifaces[i].target()) {
                (Some(cur), Some(t)) => cur == t.channel,
                _ => false,
            }
        }
    }
}

impl ClientSystem for FatVapDriver {
    fn label(&self) -> String {
        format!(
            "FatVAP[{} conns, {} slice]",
            self.cfg.num_conns, self.cfg.slice
        )
    }

    fn on_frame_into(&mut self, now: SimTime, rx: &RxFrame<'_>, actions: &mut Vec<DriverAction>) {
        match &rx.frame.body {
            FrameBody::Beacon { ssid, channel, .. }
            | FrameBody::ProbeResponse { ssid, channel } => {
                if let Some(rssi) = rx.rssi_dbm {
                    self.scanner
                        .observe(now, rx.frame.src, ssid, *channel, rssi);
                }
            }
            _ => {}
        }
        let idx = self
            .ifaces
            .iter()
            .position(|i| rx.frame.dst == i.addr)
            .or_else(|| {
                if let FrameBody::Data { packet, .. } = &rx.frame.body {
                    if let spider_wire::ip::L4::Dhcp(msg) = &packet.payload {
                        return self.ifaces.iter().position(|i| i.addr == msg.chaddr);
                    }
                }
                None
            });
        if let Some(idx) = idx {
            let mut log = std::mem::take(&mut self.log);
            let evs = self.ifaces[idx].on_frame(now, rx.frame, &mut log);
            let active = self.iface_active(idx);
            let evs2 = self.ifaces[idx].poll(now, active, &mut log);
            self.log = log;
            self.absorb(now, idx, evs, actions);
            self.absorb(now, idx, evs2, actions);
        }
    }

    fn on_switch_complete_into(
        &mut self,
        now: SimTime,
        ch: Channel,
        actions: &mut Vec<DriverAction>,
    ) {
        self.current = Some(ch);
        self.switching = false;
        self.wake_active(actions);
        if let Slot::Conn(i) = self.slot {
            if self.iface_active(i) {
                let mut log = std::mem::take(&mut self.log);
                let evs = self.ifaces[i].poll(now, true, &mut log);
                self.log = log;
                self.absorb(now, i, evs, actions);
            }
        }
    }

    fn poll_into(&mut self, now: SimTime, actions: &mut Vec<DriverAction>) {
        self.assign_ifaces(now);
        if !self.switching && now.saturating_since(self.slot_started) >= self.cfg.slice {
            self.advance_slot(now, actions);
        }
        for idx in 0..self.ifaces.len() {
            let active = self.iface_active(idx);
            let mut log = std::mem::take(&mut self.log);
            let evs = self.ifaces[idx].poll(now, active, &mut log);
            self.log = log;
            self.absorb(now, idx, evs, actions);
        }
    }

    fn next_wakeup(&self, now: SimTime) -> SimTime {
        let mut t = self.slot_started + self.cfg.slice;
        for iface in &self.ifaces {
            t = t.min(iface.next_wakeup());
        }
        t.min(now + SimDuration::from_millis(100)).max(now)
    }

    fn join_log(&self) -> &JoinLog {
        &self.log
    }

    fn is_connected(&self) -> bool {
        self.ifaces.iter().any(|i| i.is_connected())
    }

    fn delivered_bytes(&self) -> u64 {
        self.ifaces.iter().map(|i| i.delivered_bytes()).sum()
    }

    fn associated_interfaces(&self) -> usize {
        self.ifaces.iter().filter(|i| i.is_associated()).count()
    }

    fn initial_channel(&self) -> Channel {
        self.cfg.scan_channels[0]
    }

    fn can_use_channel(&self, ch: Channel) -> bool {
        self.cfg.scan_channels.contains(&ch)
    }

    fn clone_boxed(&self) -> Box<dyn ClientSystem + Send> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spider_mac80211::RxBuf;
    use spider_wire::Ssid;

    fn beacon(ap_id: u64, ch: Channel, rssi: f64) -> RxBuf {
        RxBuf {
            frame: Frame {
                src: MacAddr::from_id(ap_id),
                dst: MacAddr::BROADCAST,
                bssid: MacAddr::from_id(ap_id),
                body: FrameBody::Beacon {
                    ssid: Ssid::new(format!("ap{ap_id}")),
                    channel: ch,
                    interval: SimDuration::from_micros(102_400),
                },
            },
            channel: ch,
            rssi_dbm: Some(rssi),
        }
    }

    fn drive(d: &mut FatVapDriver, from_ms: u64, to_ms: u64) -> Vec<DriverAction> {
        let mut all = Vec::new();
        let mut t = SimTime::from_millis(from_ms);
        while t < SimTime::from_millis(to_ms) {
            let wk = d.next_wakeup(t).max(t + SimDuration::from_millis(1));
            t = wk;
            for a in d.poll(t) {
                if let DriverAction::SwitchChannel(ch) = a {
                    all.push(a.clone());
                    all.extend(d.on_switch_complete(t + SimDuration::from_millis(5), ch));
                } else {
                    all.push(a);
                }
            }
        }
        all
    }

    #[test]
    fn scans_then_joins_discovered_aps() {
        let mut d = FatVapDriver::new(FatVapConfig::default());
        d.on_frame(
            SimTime::from_millis(1),
            &beacon(100, Channel::CH1, -60.0).rx(),
        );
        d.on_frame(
            SimTime::from_millis(2),
            &beacon(101, Channel::CH6, -65.0).rx(),
        );
        let actions = drive(&mut d, 2, 600);
        let auths: std::collections::HashSet<MacAddr> = actions
            .iter()
            .filter_map(|a| match a {
                DriverAction::Transmit { frame, .. }
                    if matches!(frame.body, FrameBody::AuthRequest) =>
                {
                    Some(frame.dst)
                }
                _ => None,
            })
            .collect();
        assert!(auths.contains(&MacAddr::from_id(100)) || auths.contains(&MacAddr::from_id(101)));
        assert!(d.ifaces.iter().filter(|i| i.is_busy()).count() >= 2);
    }

    #[test]
    fn slices_rotate_between_connections() {
        let mut d = FatVapDriver::new(FatVapConfig::default());
        d.on_frame(
            SimTime::from_millis(1),
            &beacon(100, Channel::CH1, -60.0).rx(),
        );
        d.on_frame(
            SimTime::from_millis(2),
            &beacon(101, Channel::CH11, -60.0).rx(),
        );
        let actions = drive(&mut d, 2, 1_500);
        // With APs on two different channels the per-AP slicing forces
        // real channel switches.
        let switches = actions
            .iter()
            .filter(|a| matches!(a, DriverAction::SwitchChannel(_)))
            .count();
        assert!(switches >= 3, "expected repeated slicing, saw {switches}");
    }

    #[test]
    fn estimates_bootstrap_optimistically_and_decay_on_failure() {
        let mut d = FatVapDriver::new(FatVapConfig::default());
        let ap = MacAddr::from_id(100);
        assert_eq!(d.estimate_for(ap), 500_000.0);
        d.estimates.insert(ap, 400_000.0);
        d.absorb(
            SimTime::ZERO,
            0,
            vec![IfaceEvent::Down {
                bssid: ap,
                outcome: None,
            }],
            &mut Vec::new(),
        );
        assert_eq!(d.estimate_for(ap), 200_000.0);
    }

    #[test]
    fn only_slot_owner_is_active() {
        let mut d = FatVapDriver::new(FatVapConfig::default());
        d.on_frame(
            SimTime::from_millis(1),
            &beacon(100, Channel::CH1, -60.0).rx(),
        );
        d.on_frame(
            SimTime::from_millis(2),
            &beacon(101, Channel::CH1, -61.0).rx(),
        );
        drive(&mut d, 2, 300);
        // Two interfaces bound to APs on the same channel; at most one may
        // be active at any instant (FatVAP's per-AP queues).
        let active: Vec<usize> = (0..d.ifaces.len()).filter(|&i| d.iface_active(i)).collect();
        assert!(active.len() <= 1, "active: {active:?}");
    }

    #[test]
    fn label_mentions_fatvap() {
        let d = FatVapDriver::new(FatVapConfig::default());
        assert!(d.label().starts_with("FatVAP"));
    }
}
