//! Baseline client drivers the paper compares Spider against.
//!
//! * [`stock`] — a stock MadWiFi-like driver: full-band scan, join the
//!   strongest AP with default timers (1 s link-layer retries, 3 s DHCP
//!   attempts with a 60 s penalty box), hold the association until it
//!   dies. `StockDriver::quickwifi()` is the Cabernet variant with the
//!   reduced timers of Eriksson et al.
//! * [`fatvap`] — a FatVAP-style virtualised driver: time-slices the
//!   radio **per AP** (not per channel), choosing APs by estimated
//!   end-to-end bandwidth, assuming joins are already complete — the
//!   design the paper shows breaks down under real mobility (§2, §3.1
//!   Design Choice 1).

#![forbid(unsafe_code)]

pub mod fatvap;
pub mod stock;

pub use fatvap::{FatVapConfig, FatVapDriver};
pub use stock::{StockConfig, StockDriver};
