//! A stormy commute: the town drive of Table 2, but every AP can
//! misbehave — blackouts, zombies, silent or exhausted DHCP servers,
//! ICMP-filtered gateways, loss bursts (DESIGN.md §8). Prints how fast
//! each injected fault was detected and recovered from, Spider vs. the
//! stock and FatVAP baselines.
//!
//! ```sh
//! cargo run --release --example chaos_commute
//! ```

use spider_repro::baselines::{FatVapConfig, FatVapDriver, StockConfig, StockDriver};
use spider_repro::core::{OperationMode, SpiderConfig, SpiderDriver};
use spider_repro::simcore::SimDuration;
use spider_repro::wire::Channel;
use spider_repro::workloads::scenarios::{town_scenario, ScenarioParams};
use spider_repro::workloads::{FaultPlan, FaultProfile, FaultStats, RunResult, World, WorldConfig};

fn stormy_town(seed: u64, fault_seed: u64) -> WorldConfig {
    let params = ScenarioParams {
        duration: SimDuration::from_secs(600),
        seed,
        ..Default::default()
    };
    let mut cfg = town_scenario(&params);
    cfg.faults = FaultPlan::seeded(
        fault_seed,
        cfg.deployment.len(),
        cfg.duration,
        &FaultProfile::stormy(),
    );
    cfg
}

fn report(label: &str, result: &RunResult) {
    let f: &FaultStats = &result.faults;
    println!("\n{label}");
    println!(
        "  goodput {:>7.1} KB/s   connectivity {:>5.1}%   {} joins, {} failed",
        result.throughput_kbs(),
        result.connectivity_pct(),
        result.join_log.join.len(),
        result.join_log.join_failures,
    );
    println!(
        "  drops by fault: blackout {} | zombie {} | dhcp-silent {} | \
         dhcp-nak {} | icmp-filtered {}   ({} AP reboots)",
        f.frames_dropped_blackout,
        f.packets_dropped_zombie,
        f.dhcp_dropped_silent,
        f.dhcp_naks_exhausted,
        f.icmp_dropped_filtered,
        f.ap_reboots,
    );
    match (f.mean_detect_s(), f.mean_recover_s()) {
        (Some(d), Some(r)) => {
            println!(
                "  detected {} dead links, mean {:.2} s after onset; \
                 mean recovery {:.2} s over {} episodes",
                f.detect_times_s.len(),
                d,
                r,
                f.recover_times_s.len(),
            );
            print!("  per-fault detect:");
            for t in &f.detect_times_s {
                print!(" {t:.2}s");
            }
            print!("\n  per-fault recover:");
            for t in &f.recover_times_s {
                print!(" {t:.2}s");
            }
            println!();
        }
        _ => println!("  no mid-session fault was pinned on this driver"),
    }
}

fn main() {
    println!(
        "A 10-minute town drive through a fault storm (seeded, fully\n\
         deterministic): every AP may black out, go zombie, stop serving\n\
         DHCP, NAK cached leases, filter ICMP, or burst-lose frames."
    );

    let (seed, fault_seed) = (42, 1042);

    let spider = World::new(
        stormy_town(seed, fault_seed),
        SpiderDriver::new(SpiderConfig::for_mode(
            OperationMode::SingleChannelMultiAp(Channel::CH1),
            1,
        )),
    )
    .run();
    report("Spider (1 channel, multi-AP)", &spider);

    let spider_mc = World::new(
        stormy_town(seed, fault_seed),
        SpiderDriver::new(SpiderConfig::for_mode(
            OperationMode::MultiChannelMultiAp {
                period: SimDuration::from_millis(600),
            },
            1,
        )),
    )
    .run();
    report("Spider (3 channels, multi-AP)", &spider_mc);

    let stock = World::new(
        stormy_town(seed, fault_seed),
        StockDriver::new(StockConfig::quickwifi(1)),
    )
    .run();
    report("stock roaming (QuickWiFi timers)", &stock);

    let fatvap = World::new(
        stormy_town(seed, fault_seed),
        FatVapDriver::new(FatVapConfig::default()),
    )
    .run();
    report("FatVAP-style AP slicing", &fatvap);

    println!(
        "\nDetection clocks start at episode onset for clients present\n\
         when the fault lands (and at the first swallowed packet for\n\
         mid-episode joins), so drivers that are off-channel (the\n\
         3-channel schedule) or mid-join see longer times than the\n\
         3.0 s lab-condition ping budget enforced by tests/chaos.rs. Spider's recovery stack — 10/s end-to-end pings\n\
         (30 losses = dead), gateway-ping fallback, NAK-driven lease\n\
         eviction, and an exponential-backoff AP blacklist — keeps the\n\
         storm from trapping it on a dead AP: the 1-channel mode holds\n\
         its goodput, the 3-channel mode its connectivity, matching the\n\
         fair-weather Table 2 split."
    );
}
