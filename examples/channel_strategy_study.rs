//! Channel-strategy study: the paper's four operation modes head to
//! head on the same drive — the throughput/connectivity trade-off of
//! Tables 2 and 4 in one place.
//!
//! ```sh
//! cargo run --release --example channel_strategy_study
//! ```

use spider_repro::core::{OperationMode, SpiderConfig, SpiderDriver};
use spider_repro::simcore::{sweep, SimDuration};
use spider_repro::wire::Channel;
use spider_repro::workloads::scenarios::{town_scenario, ScenarioParams};
use spider_repro::workloads::World;

fn main() {
    let period = SimDuration::from_millis(600);
    let modes = [
        (
            "single-channel multi-AP (throughput king)",
            OperationMode::SingleChannelMultiAp(Channel::CH1),
        ),
        (
            "single-channel single-AP (stock-like)",
            OperationMode::SingleChannelSingleAp(Channel::CH1),
        ),
        (
            "multi-channel  multi-AP (connectivity king)",
            OperationMode::MultiChannelMultiAp { period },
        ),
        (
            "multi-channel  single-AP",
            OperationMode::MultiChannelSingleAp { period },
        ),
    ];
    println!("30-minute town drive, identical deployment (seed 7):\n");
    println!(
        "{:46} {:>12} {:>13} {:>8} {:>9}",
        "configuration", "throughput", "connectivity", "joins", "switches"
    );
    // All four modes run as one parallel sweep over the same deployment.
    let results = sweep(&modes, |(_, mode)| {
        let params = ScenarioParams {
            duration: SimDuration::from_secs(1_800),
            seed: 7,
            ..Default::default()
        };
        let world = town_scenario(&params);
        let spider = SpiderConfig::for_mode(mode.clone(), 1);
        World::new(world, SpiderDriver::new(spider)).run()
    });
    for ((label, _), result) in modes.iter().zip(&results) {
        println!(
            "{:46} {:>9.1} KB/s {:>11.1} % {:>8} {:>9}",
            label,
            result.throughput_kbs(),
            result.connectivity_pct(),
            result.join_log.join.len(),
            result.switches,
        );
    }
    println!(
        "\nThe paper's §2.3 conclusion, visible above: at vehicular speeds,\n\
         throughput is maximised by spending all radio time on one channel\n\
         and aggregating its APs; connectivity is maximised by rotating\n\
         channels at the cost of join overhead on every rotation."
    );
}
