//! Quickstart: drive a Spider client through a small synthetic town and
//! print what happened.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use spider_repro::core::{OperationMode, SpiderConfig, SpiderDriver};
use spider_repro::simcore::SimDuration;
use spider_repro::wire::Channel;
use spider_repro::workloads::scenarios::{town_scenario, ScenarioParams};
use spider_repro::workloads::World;

fn main() {
    // A 5-minute drive around a downtown loop at 10 m/s (~22 mph),
    // through a synthetic deployment of open APs on the channel mix the
    // paper measured (28/33/34 % on channels 1/6/11).
    let params = ScenarioParams {
        duration: SimDuration::from_secs(300),
        seed: 42,
        ..Default::default()
    };
    let world_cfg = town_scenario(&params);
    println!(
        "deployment: {} open APs along a {}x{} m loop",
        world_cfg.deployment.len(),
        params.loop_size_m.0,
        params.loop_size_m.1
    );

    // Spider in its headline configuration: all radio time on channel 1,
    // concurrent connections to as many channel-1 APs as it can join.
    let spider = SpiderConfig::for_mode(OperationMode::SingleChannelMultiAp(Channel::CH1), 1);
    let result = World::new(world_cfg, SpiderDriver::new(spider)).run();

    println!("\n{result}");
    println!(
        "  downloaded {:.1} MB in {:.0} s of driving",
        result.bytes as f64 / 1e6,
        result.duration.as_secs_f64()
    );
    println!(
        "  {} successful joins (assoc median {:.0} ms, DHCP median {:.2} s)",
        result.join_log.join.len(),
        result.join_log.assoc_cdf().median() * 1e3,
        result.join_log.dhcp_cdf().median(),
    );
    println!(
        "  connectivity: {:.0} % of seconds saw data",
        result.connectivity_pct()
    );
}
