//! The analytical model end to end: join probabilities (Eq. 7), the
//! throughput optimiser (Eqs. 8–10), and the dividing speed that decides
//! Spider's whole channel strategy.
//!
//! ```sh
//! cargo run --release --example dividing_speed
//! ```

use spider_repro::model::{ChannelScenario, JoinModel, ThroughputOptimizer};

fn main() {
    // How likely is a mobile client to obtain a DHCP lease within 4 s,
    // as a function of how much of its schedule it spends on the AP's
    // channel? (Fig. 2's question.)
    let model = JoinModel::paper_defaults(10.0);
    println!("p(lease within 4s) for beta in [0.5s, 10s], D=500ms, h=10%:\n");
    println!("{:>22} {:>12}", "time on channel", "p(join)");
    for fi in [0.1, 0.25, 0.5, 0.75, 1.0] {
        println!("{:>20.0} % {:>12.3}", fi * 100.0, model.p_join(fi, 4.0));
    }
    println!(
        "\n→ \"the node should spend nearly 100% of its time on the channel\n\
         for an assured successful join\" (§2.1.2).\n"
    );

    // Where is the dividing speed? Two channels: 75% of Bw already
    // joined on channel 1, 25% available-after-join on channel 2.
    let optimizer = ThroughputOptimizer::paper(model);
    let scenarios = [
        ChannelScenario {
            joined_frac: 0.75,
            available_frac: 0.0,
        },
        ChannelScenario {
            joined_frac: 0.0,
            available_frac: 0.25,
        },
    ];
    println!("optimal schedule vs speed (75% joined on ch1, 25% joinable on ch2):\n");
    println!(
        "{:>11} {:>9} {:>9} {:>13}",
        "speed", "f_ch1", "f_ch2", "total (kbps)"
    );
    let speeds = [2.5, 3.3, 5.0, 6.6, 10.0, 20.0];
    for &v in &speeds {
        let opt = optimizer.optimize(&scenarios, v);
        println!(
            "{:>7} m/s {:>9.2} {:>9.2} {:>13.0}",
            v,
            opt.fractions[0],
            opt.fractions[1],
            opt.total_bps / 1e3
        );
    }
    let div = optimizer.dividing_speed(&scenarios, &speeds).unwrap();
    println!(
        "\n→ dividing speed: {div} m/s. Faster than this, joining APs on a\n\
         second channel cannot pay for the air time it costs (Eq. 9's\n\
         fixed point collapses), so Spider stays on one channel — the\n\
         result its whole design builds on."
    );
}
