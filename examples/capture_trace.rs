//! Capture and dissect a drive: run a short scenario with frame capture
//! enabled, then read the capture back and print a protocol timeline —
//! the simulator's `tcpdump`.
//!
//! ```sh
//! cargo run --release --example capture_trace
//! ```

use spider_repro::core::{OperationMode, SpiderConfig, SpiderDriver};
use spider_repro::simcore::SimDuration;
use spider_repro::wire::ip::L4;
use spider_repro::wire::{Channel, FrameBody};
use spider_repro::workloads::scenarios::lab_scenario;
use spider_repro::workloads::{read_capture, Direction, World};
use std::collections::BTreeMap;

fn main() {
    let path = std::env::temp_dir().join("spider-trace.spdr");
    let mut cfg = lab_scenario(
        &[Channel::CH1, Channel::CH1],
        250_000.0,
        SimDuration::from_secs(10),
        42,
    );
    cfg.capture = Some((path.clone(), 100_000));
    let driver = SpiderDriver::new(SpiderConfig::for_mode(
        OperationMode::SingleChannelMultiAp(Channel::CH1),
        1,
    ));
    let result = World::new(cfg, driver).run();
    println!("{result}\n");

    let records = read_capture(&path).expect("read capture");
    println!("captured {} frames → {}", records.len(), path.display());

    // Frame-type census.
    let mut census: BTreeMap<&'static str, usize> = BTreeMap::new();
    for r in &records {
        let kind = match &r.frame.body {
            FrameBody::Beacon { .. } => "beacon",
            FrameBody::ProbeRequest { .. } => "probe-req",
            FrameBody::ProbeResponse { .. } => "probe-resp",
            FrameBody::AuthRequest => "auth-req",
            FrameBody::AuthResponse { .. } => "auth-resp",
            FrameBody::AssocRequest { .. } => "assoc-req",
            FrameBody::AssocResponse { .. } => "assoc-resp",
            FrameBody::Deauth { .. } => "deauth",
            FrameBody::Null { .. } => "psm-null",
            FrameBody::PsPoll => "ps-poll",
            FrameBody::Data { packet, .. } => match &packet.payload {
                L4::Dhcp(_) => "dhcp",
                L4::Icmp(_) => "icmp",
                L4::Tcp(_) => "tcp",
            },
        };
        *census.entry(kind).or_default() += 1;
    }
    println!("\nframe census:");
    for (kind, count) in &census {
        println!("  {kind:12} {count:>6}");
    }

    // The first 20 non-TCP frames, tcpdump style.
    println!("\nfirst 20 control-plane frames:");
    for r in records
        .iter()
        .filter(|r| {
            !matches!(&r.frame.body, FrameBody::Data { packet, .. }
                if matches!(packet.payload, L4::Tcp(_)))
        })
        .take(20)
    {
        let dir = match r.direction {
            Direction::ToClient => "→ client",
            Direction::ToAp => "→ ap    ",
        };
        println!(
            "  {:>10.6}s {dir}  {} → {}  {:?}",
            r.at.as_secs_f64(),
            r.frame.src,
            r.frame.dst,
            discriminant_name(&r.frame.body),
        );
    }
}

fn discriminant_name(body: &FrameBody) -> String {
    match body {
        FrameBody::Data { packet, .. } => match &packet.payload {
            L4::Dhcp(m) => format!("DHCP {:?}", m.op),
            L4::Icmp(m) => format!("{m:?}"),
            L4::Tcp(s) => format!("TCP seq={}", s.seq),
        },
        other => {
            let s = format!("{other:?}");
            s.split([' ', '{']).next().unwrap_or("?").to_string()
        }
    }
}
