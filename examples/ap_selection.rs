//! AP selection walkthrough: the utility table (Design Choice 2) and
//! Appendix A's exact-vs-greedy selection.
//!
//! ```sh
//! cargo run --release --example ap_selection
//! ```

use spider_repro::core::utility::{JoinOutcome, UtilityConfig, UtilityTable};
use spider_repro::model::selection::{density_score, greedy_select, optimal_select, ApOption};
use spider_repro::simcore::SimTime;
use spider_repro::wire::{Channel, MacAddr, Ssid};

fn main() {
    // --- Part 1: the join-history utility table --------------------
    println!("Part 1: join-history utility (va=0.3 < vb=0.6 < vc=1.0)\n");
    let mut table = UtilityTable::new(UtilityConfig::default());
    let now = SimTime::from_secs(100);
    let aps = [
        (
            "cafe-wifi",
            1u64,
            -55.0,
            vec![JoinOutcome::FullyJoined, JoinOutcome::FullyJoined],
        ),
        (
            "captive-portal",
            2,
            -50.0,
            vec![JoinOutcome::LeaseOnly, JoinOutcome::LeaseOnly],
        ),
        (
            "flaky-dhcp",
            3,
            -52.0,
            vec![JoinOutcome::AssociatedOnly, JoinOutcome::Failed],
        ),
        ("brand-new", 4, -70.0, vec![]),
    ];
    for (name, id, rssi, history) in &aps {
        let mac = MacAddr::from_id(*id);
        table.observe(now, mac, &Ssid::new(*name), Channel::CH6, *rssi);
        for outcome in history {
            table.record_outcome(now, mac, *outcome);
        }
    }
    println!("{:16} {:>7} {:>9}", "AP", "RSSI", "utility");
    for (name, id, _, _) in &aps {
        let rec = table.get(MacAddr::from_id(*id)).unwrap();
        println!("{name:16} {:>4.0}dBm {:>9.3}", rec.rssi_dbm, rec.utility);
    }
    // Past the failure cooldown, who gets picked?
    let later = now + spider_repro::simcore::SimDuration::from_secs(3);
    let mut t2 = table.clone();
    for (name, id, rssi, _) in &aps {
        t2.observe(
            later,
            MacAddr::from_id(*id),
            &Ssid::new(*name),
            Channel::CH6,
            *rssi,
        );
    }
    let (chosen, rec) = t2.best_candidate(later, &[Channel::CH6], &[]).unwrap();
    println!(
        "\nselected: {} (utility {:.3}) — a proven performer or an\n\
         optimistically bootstrapped newcomer wins; the captive portal and\n\
         the flaky AP are ranked down by history, not by signal.\n",
        aps.iter()
            .find(|a| MacAddr::from_id(a.1) == chosen)
            .unwrap()
            .0,
        rec.utility
    );

    // --- Part 2: why a heuristic at all (Appendix A) ----------------
    println!("Part 2: exact vs greedy multi-AP selection (Appendix A)\n");
    // Five APs on an upcoming road segment, 20s of radio time to spend.
    let options = vec![
        ApOption::from_encounter(18.0, 400_000.0, 0.8, 20.0), // long & decent
        ApOption::from_encounter(8.0, 900_000.0, 0.5, 20.0),  // short & fast
        ApOption::from_encounter(6.0, 850_000.0, 0.5, 20.0),  // short & fast
        ApOption::from_encounter(14.0, 200_000.0, 1.0, 20.0), // long & slow
        ApOption::from_encounter(3.0, 500_000.0, 0.3, 20.0),  // drive-by
    ];
    let exact = optimal_select(&options, 20.0, 2_000);
    let greedy = greedy_select(&options, 20.0, density_score);
    println!(
        "exact optimum: APs {:?}, {:.1} MB attainable",
        exact.chosen,
        exact.value / 1e6
    );
    println!(
        "greedy:        APs {:?}, {:.1} MB attainable ({:.0}% of optimal)",
        greedy.chosen,
        greedy.value / 1e6,
        100.0 * greedy.value / exact.value
    );
    println!(
        "\nOptimal selection is a 0-1 knapsack (NP-hard). Spider instead\n\
         ranks by join history in O(n log n) — Appendix A's argument for\n\
         why a real-time client must be greedy."
    );
}
