//! A commute: downtown crawl, then a fast arterial — driven with the
//! §4.8 adaptive scheduler, which rotates channels while slow and locks
//! to the busiest channel at speed.
//!
//! ```sh
//! cargo run --release --example vehicular_commute
//! ```

use spider_repro::core::adaptive::{AdaptivePolicy, AdaptiveSpider};
use spider_repro::core::{OperationMode, SpiderConfig, SpiderDriver};
use spider_repro::simcore::SimDuration;
use spider_repro::wire::Channel;
use spider_repro::workloads::scenarios::{town_scenario, ScenarioParams};
use spider_repro::workloads::World;

fn leg(name: &str, speed_mps: f64, seed: u64) {
    let params = ScenarioParams {
        duration: SimDuration::from_secs(600),
        speed_mps,
        seed,
        ..Default::default()
    };
    println!("\n--- {name}: {speed_mps} m/s for 10 minutes ---");

    // Adaptive Spider, fed the leg's speed (GPS in a real deployment).
    let world = town_scenario(&params);
    let inner = SpiderDriver::new(SpiderConfig::for_mode(
        OperationMode::SingleChannelMultiAp(Channel::CH6),
        1,
    ));
    let mut adaptive = AdaptiveSpider::new(inner, AdaptivePolicy::default());
    adaptive.set_speed_hint(speed_mps);
    let result = World::new(world, adaptive).run();
    println!(
        "adaptive:          {:>7.1} KB/s  {:>5.1}% connectivity  ({} joins)",
        result.throughput_kbs(),
        result.connectivity_pct(),
        result.join_log.join.len()
    );

    // The two static policies it arbitrates between, for reference.
    for (label, mode) in [
        (
            "static 1-channel:",
            OperationMode::SingleChannelMultiAp(Channel::CH1),
        ),
        (
            "static 3-channel:",
            OperationMode::MultiChannelMultiAp {
                period: SimDuration::from_millis(600),
            },
        ),
    ] {
        let world = town_scenario(&params);
        let result = World::new(world, SpiderDriver::new(SpiderConfig::for_mode(mode, 1))).run();
        println!(
            "{label:18} {:>7.1} KB/s  {:>5.1}% connectivity",
            result.throughput_kbs(),
            result.connectivity_pct()
        );
    }
}

fn main() {
    println!("A commute in two legs, same client logic, different speeds.");
    leg("downtown crawl", 3.0, 21);
    leg("arterial road", 15.0, 22);
    println!(
        "\nThe adaptive scheduler follows the paper's dividing-speed rule\n\
         (§2.1.3): below ~10 m/s rotating channels buys connectivity for\n\
         little cost; above it, channel switching strangles TCP and the\n\
         scheduler pins the busiest channel."
    );
}
